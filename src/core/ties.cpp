#include "core/ties.hpp"

#include <stdexcept>
#include <utility>
#include <vector>

#include "matching/hopcroft_karp.hpp"

namespace ncpm::core {

namespace {

using matching::EouLabel;

bool allowed_rank1_edge(EouLabel a, EouLabel p) {
  // Edges no maximum matching of G1 uses: Odd-Odd, Odd-Unreachable and
  // Unreachable-Odd. Even-Even edges cannot exist in G1 (they would expose
  // an augmenting path), so everything else is fair game.
  return (a == EouLabel::Even && p == EouLabel::Odd) ||
         (a == EouLabel::Odd && p == EouLabel::Even) ||
         (a == EouLabel::Unreachable && p == EouLabel::Unreachable);
}

}  // namespace

namespace {

/// The shared Section V machinery: rank-1 subgraph, a maximum matching of
/// it, EOU labels and s(a) per applicant.
struct TiesContext {
  graph::BipartiteGraph g1;
  matching::Matching m1;
  matching::EouDecomposition eou;
  std::vector<std::int32_t> s_post;  ///< one representative (first in list order)
  std::vector<std::int32_t> s_rank;  ///< rank of a's most preferred Even post
};

TiesContext build_ties_context(const Instance& inst) {
  const std::int32_t n_a = inst.num_applicants();
  const std::int32_t n_ext = inst.total_posts();

  // G1: the rank-1 edges over the extended post space.
  std::vector<std::pair<std::int32_t, std::int32_t>> e1;
  for (std::int32_t a = 0; a < n_a; ++a) {
    const auto posts = inst.posts_of(a);
    const auto ranks = inst.ranks_of(a);
    for (std::size_t i = 0; i < posts.size() && ranks[i] == 1; ++i) {
      e1.emplace_back(a, posts[i]);
    }
  }
  graph::BipartiteGraph g1(n_a, n_ext, e1);
  matching::Matching m1 = matching::maximum_matching(g1);
  auto eou = matching::eou_decomposition(g1, m1);

  // s(a): most preferred Even post (ties broken by list order); the last
  // resort, which is exposed in G1 and therefore Even, is the fallback.
  // With ties the s-slot is a rank *level*, not a single post: any Even
  // post tied at the rank of a's most preferred Even post is a valid
  // second-choice target.
  std::vector<std::int32_t> s_post(static_cast<std::size_t>(n_a));
  std::vector<std::int32_t> s_rank(static_cast<std::size_t>(n_a));
  for (std::int32_t a = 0; a < n_a; ++a) {
    std::int32_t s = kNone;
    const auto posts = inst.posts_of(a);
    const auto ranks = inst.ranks_of(a);
    std::int32_t sr = 0;
    for (std::size_t i = 0; i < posts.size(); ++i) {
      if (eou.right[static_cast<std::size_t>(posts[i])] == EouLabel::Even) {
        s = posts[i];
        sr = ranks[i];
        break;
      }
    }
    if (s == kNone) {
      s = inst.last_resort(a);
      sr = inst.num_ranks(a) + 1;
    }
    s_post[static_cast<std::size_t>(a)] = s;
    s_rank[static_cast<std::size_t>(a)] = sr;
  }
  return TiesContext{std::move(g1), std::move(m1), std::move(eou), std::move(s_post),
                     std::move(s_rank)};
}

}  // namespace

std::optional<matching::Matching> find_popular_matching_ties(const Instance& inst) {
  if (!inst.has_last_resorts()) {
    throw std::invalid_argument("find_popular_matching_ties: instance must have last resorts");
  }
  const std::int32_t n_a = inst.num_applicants();
  const std::int32_t n_ext = inst.total_posts();
  const TiesContext ctx = build_ties_context(inst);
  const auto& m1 = ctx.m1;
  const auto& eou = ctx.eou;
  const auto& s_post = ctx.s_post;

  // G'': allowed rank-1 edges, plus the s-edge for Even applicants.
  std::vector<std::pair<std::int32_t, std::int32_t>> edges;
  for (std::int32_t a = 0; a < n_a; ++a) {
    const auto posts = inst.posts_of(a);
    const auto ranks = inst.ranks_of(a);
    const EouLabel la = eou.left[static_cast<std::size_t>(a)];
    for (std::size_t i = 0; i < posts.size() && ranks[i] == 1; ++i) {
      if (allowed_rank1_edge(la, eou.right[static_cast<std::size_t>(posts[i])])) {
        edges.emplace_back(a, posts[i]);
      }
    }
    if (la == EouLabel::Even) {
      // Every Even post tied at the s-rank is a valid target; offering all
      // of them keeps the feasibility search complete under ties.
      const std::int32_t sr = ctx.s_rank[static_cast<std::size_t>(a)];
      if (s_post[static_cast<std::size_t>(a)] == inst.last_resort(a)) {
        edges.emplace_back(a, inst.last_resort(a));
      } else {
        for (std::size_t i = 0; i < posts.size(); ++i) {
          if (ranks[i] == sr &&
              eou.right[static_cast<std::size_t>(posts[i])] == EouLabel::Even) {
            edges.emplace_back(a, posts[i]);
          }
        }
      }
    }
  }
  const graph::BipartiteGraph g2(n_a, n_ext, edges);

  // Applicant-complete matching of G'' (M1 ⊆ G'', so start from it).
  const matching::Matching ma = matching::maximum_matching(g2, m1);
  if (ma.size() != static_cast<std::size_t>(n_a)) return std::nullopt;

  // Cover all applicants (from ma) and every post m1 covers — in particular
  // all Odd/Unreachable posts — so M ∩ E1 is a maximum matching of G1.
  matching::Matching m = matching::mendelsohn_dulmage(ma, m1);

  // Defensive verification of the characterization.
  if (m.size() != static_cast<std::size_t>(n_a)) {
    throw std::logic_error("ties: Mendelsohn-Dulmage lost an applicant");
  }
  std::size_t rank1_matched = 0;
  for (std::int32_t a = 0; a < n_a; ++a) {
    const std::int32_t p = m.right_of(a);
    if (inst.rank_of(a, p) == 1) ++rank1_matched;
  }
  if (rank1_matched < m1.size()) {
    throw std::logic_error("ties: M ∩ E1 is not a maximum matching of G1");
  }
  return m;
}

bool satisfies_ties_characterization(const Instance& inst, const matching::Matching& m) {
  if (!inst.has_last_resorts()) {
    throw std::invalid_argument("satisfies_ties_characterization: instance must have last resorts");
  }
  if (m.n_left() != inst.num_applicants() || m.n_right() != inst.total_posts()) return false;
  const TiesContext ctx = build_ties_context(inst);
  std::size_t rank1_matched = 0;
  for (std::int32_t a = 0; a < inst.num_applicants(); ++a) {
    const std::int32_t p = m.right_of(a);
    if (p == matching::kNone) return false;  // must be applicant-complete
    const std::int32_t rank = inst.rank_of(a, p);
    if (rank == kNoRank) return false;  // unacceptable pair
    if (rank == 1) {
      ++rank1_matched;  // (ii): any rank-1 post is in f(a)
    } else {
      // (ii): otherwise it must sit at a's s-rank and be Even (posts tied
      // with the representative s(a) are interchangeable).
      const bool even = inst.is_last_resort(p) ||
                        ctx.eou.right[static_cast<std::size_t>(p)] == EouLabel::Even;
      if (rank != ctx.s_rank[static_cast<std::size_t>(a)] || !even) return false;
    }
  }
  // (i): M ∩ E1 is a maximum matching of G1.
  return rank1_matched == ctx.m1.size();
}

Instance rank1_instance(const graph::BipartiteGraph& g) {
  std::vector<std::vector<std::vector<std::int32_t>>> groups(
      static_cast<std::size_t>(g.n_left()));
  for (std::int32_t l = 0; l < g.n_left(); ++l) {
    std::vector<std::int32_t> tier;
    tier.reserve(g.degree_left(l));
    for (const auto e : g.left_incident(l)) {
      tier.push_back(g.edge_right(static_cast<std::size_t>(e)));
    }
    if (!tier.empty()) groups[static_cast<std::size_t>(l)].push_back(std::move(tier));
  }
  return Instance::with_ties(g.n_right(), std::move(groups), /*with_last_resorts=*/false);
}

matching::Matching popular_matching_rank1(const Instance& inst) {
  if (inst.has_last_resorts()) {
    throw std::invalid_argument("popular_matching_rank1: expects a no-last-resort instance");
  }
  std::vector<std::pair<std::int32_t, std::int32_t>> edges;
  for (std::int32_t a = 0; a < inst.num_applicants(); ++a) {
    for (const auto p : inst.posts_of(a)) edges.emplace_back(a, p);
  }
  const graph::BipartiteGraph g(inst.num_applicants(), inst.total_posts(), std::move(edges));
  // Lemma 13: any maximum matching is popular here (and Lemma 12: popular
  // implies maximum), so the maximum-matching black box answers the query.
  return matching::maximum_matching(g);
}

matching::Matching max_card_bipartite_via_popular(const graph::BipartiteGraph& g) {
  const Instance inst = rank1_instance(g);
  return popular_matching_rank1(inst);
}

}  // namespace ncpm::core
