#pragma once
// Algorithm 1: the NC popular-matching algorithm (Theorem 3).
//
//   1. build the reduced graph G' (reduced_graph.hpp);
//   2. find an applicant-complete matching of G' (Algorithm 2,
//      applicant_complete.hpp) or report that none exists;
//   3. for every f-post p left unmatched, promote one applicant of f^-1(p)
//      from s(a) to p — the promotions are independent because the f^-1 sets
//      are disjoint, so this is a single parallel round.
// By Theorem 1 the result is popular; if step 2 fails, no popular matching
// exists.

#include <optional>

#include "core/instance.hpp"
#include "matching/matching.hpp"
#include "pram/counters.hpp"
#include "pram/workspace.hpp"

namespace ncpm::core {

struct PopularRunStats {
  std::uint64_t while_rounds = 0;  ///< Algorithm 2 while-loop iterations (Lemma 2)
  /// Workspace buffer growths inside the Algorithm 2 round loop: warm-up
  /// (first round) vs steady state (all later rounds; 0 == the zero-
  /// allocation guarantee holds).
  std::uint64_t workspace_allocs_first_round = 0;
  std::uint64_t workspace_allocs_later_rounds = 0;
};

/// The NC pipeline. Requires strict preferences and last resorts. The
/// returned matching pairs applicants with extended post ids and is
/// applicant-complete (last resorts count as matched).
std::optional<matching::Matching> find_popular_matching(const Instance& inst,
                                                        pram::NcCounters* counters = nullptr,
                                                        PopularRunStats* stats = nullptr);

/// Workspace-reusing variant: all Algorithm 2 round-engine scratch is
/// leased from `ws`. Passing the same workspace across calls keeps the
/// buffers warm, so repeated solves perform no round-loop allocation at
/// all.
std::optional<matching::Matching> find_popular_matching(const Instance& inst,
                                                        pram::Workspace& ws,
                                                        pram::NcCounters* counters = nullptr,
                                                        PopularRunStats* stats = nullptr);

}  // namespace ncpm::core
