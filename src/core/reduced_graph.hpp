#pragma once
// The reduced graph G' of Section III (strict preferences).
//
// For each applicant a, f(a) is the top post of a's list and s(a) the most
// preferred *non-f-post* on the list (falling back to the last resort l(a),
// which always exists and is never an f-post). G' keeps exactly the edges
// (a, f(a)) and (a, s(a)) — Theorem 1 says a matching is popular iff it is
// applicant-complete in G' and matches every f-post.
//
// Construction is the parallel procedure from the paper, phrased per
// element: mark the posts with a rank-1 incident edge (the f-posts), then
// per applicant take the top entry and the first non-f entry of the list.

#include <cstdint>
#include <vector>

#include "core/instance.hpp"
#include "pram/counters.hpp"
#include "pram/executor.hpp"

namespace ncpm::core {

struct ReducedGraph {
  std::vector<std::int32_t> f_post;      ///< per applicant: f(a) (always a real post)
  std::vector<std::int32_t> s_post;      ///< per applicant: s(a) (may be the last resort)
  std::vector<std::int32_t> s_rank;      ///< rank of s(a) on a's list (num_ranks+1 for l(a))
  std::vector<std::uint8_t> is_f_post;   ///< over extended post ids
  std::vector<std::int32_t> f_posts;     ///< the distinct f-posts, ascending
  /// f^-1 as CSR over extended post ids: applicants whose f(a) = p.
  std::vector<std::size_t> f_inv_offset;
  std::vector<std::int32_t> f_inv;

  std::size_t num_f_posts() const noexcept { return f_posts.size(); }
  /// Applicants with f(a) == p (empty span for non-f-posts).
  std::span<const std::int32_t> f_inverse(std::int32_t p) const {
    const auto i = static_cast<std::size_t>(p);
    return {f_inv.data() + f_inv_offset[i], f_inv_offset[i + 1] - f_inv_offset[i]};
  }
};

/// Build G' from a strict-preferences instance with last resorts.
/// Throws std::invalid_argument for ties or missing last resorts.
ReducedGraph build_reduced_graph(const Instance& inst, pram::NcCounters* counters = nullptr,
                                 pram::Executor& ex = pram::default_executor());

}  // namespace ncpm::core
