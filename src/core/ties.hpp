#pragma once
// Popular matchings with ties, and the Theorem 11 reduction.
//
// With ties the characterization (Abraham–Irving–Kavitha–Mehlhorn 2007)
// becomes: let E1 be the rank-1 edges, G1 = (A ∪ P, E1), M1 a maximum
// matching of G1, and label vertices Even/Odd/Unreachable by alternating
// reachability from exposed vertices. With f(a) = a's rank-1 posts and
// s(a) = a's most preferred *Even* post, a matching M is popular iff
//   (i)  M ∩ E1 is a maximum matching of G1, and
//   (ii) every applicant is matched to a post in f(a) ∪ {s(a)}.
//
// The solver builds the pruned reduced graph G'' — allowed rank-1 edges
// (Even–Odd, Odd–Even, Unreachable–Unreachable; the others lie in no
// maximum matching of G1) plus the s-edge for Even applicants (Odd and
// Unreachable applicants must be rank-1 matched anyway) — finds an
// applicant-complete matching MA of G'' or reports none, and combines it
// with M1 through the Mendelsohn–Dulmage theorem so the result covers every
// applicant *and* every Odd/Unreachable post, which forces (i).
//
// Theorem 11 (MCBM ≤_NC Popular Matching): give every edge of an arbitrary
// bipartite graph rank 1 and add no last resorts; then popular matchings
// and maximum-cardinality matchings coincide (Lemmas 12 and 13). The
// reduction itself is the NC part; the instance family it produces is
// solved here per Lemma 13.

#include <optional>

#include "core/instance.hpp"
#include "graph/bipartite_graph.hpp"
#include "matching/matching.hpp"

namespace ncpm::core {

/// Popular matching of an instance with (or without) ties, via the AIKM
/// characterization. Requires last resorts. Sequential: the maximum-matching
/// black box inside is Hopcroft–Karp (whether popular matching with ties is
/// in NC is exactly the open question behind Conjecture 14).
std::optional<matching::Matching> find_popular_matching_ties(const Instance& inst);

/// Theorem 11 instance: every edge of g at rank 1, no last resorts.
Instance rank1_instance(const graph::BipartiteGraph& g);

/// Popular matching of a rank-1 no-last-resort instance (Lemma 13: any
/// maximum matching of the acceptability graph is popular, and Lemma 12:
/// any popular matching is maximum).
matching::Matching popular_matching_rank1(const Instance& inst);

/// The full Theorem 11 pipeline: reduce g to a popular-matching instance,
/// solve it, return the matching (which has maximum cardinality in g).
matching::Matching max_card_bipartite_via_popular(const graph::BipartiteGraph& g);

/// Polynomial-time popularity check for instances with ties (and strict
/// ones), via the AIKM characterization: M ∩ E1 is a maximum matching of
/// the rank-1 subgraph and every applicant sits on f(a) ∪ {s(a)}. The
/// ties-side analogue of core::satisfies_popular_characterization.
bool satisfies_ties_characterization(const Instance& inst, const matching::Matching& m);

}  // namespace ncpm::core
