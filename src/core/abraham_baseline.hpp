#pragma once
// Sequential baseline: the linear-time popular-matching algorithm of
// Abraham, Irving, Kavitha and Mehlhorn (SIAM J. Comput. 2007) for strict
// lists — the algorithm the paper parallelises.
//
// Identical characterization (Theorem 1), sequential realisation: build G',
// peel degree-1 posts with a work queue, 2-colour the leftover even cycles
// by walking them, then promote unmatched f-posts. Used as the reference
// implementation and as the single-thread baseline in the benchmarks.

#include <optional>

#include "core/instance.hpp"
#include "matching/matching.hpp"

namespace ncpm::core {

std::optional<matching::Matching> find_popular_matching_sequential(const Instance& inst);

}  // namespace ncpm::core
