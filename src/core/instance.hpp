#pragma once
// The one-sided preference-system instance of Section II.
//
// Applicants 0..A-1 rank a non-empty subset of posts 0..P-1, possibly with
// ties (several posts sharing one rank). Following the paper, every
// applicant a also has a unique *last-resort* post l(a), ranked strictly
// below everything on a's list, so that matchings can be assumed
// applicant-complete; the "size" of a matching is the number of applicants
// not parked on their last resort.
//
// Posts live in an *extended* id space: real posts keep their ids and
// l(a) = P + a. The Theorem 11 reduction needs instances *without* last
// resorts ("We do not add last resort posts at all"), so that extension is
// optional per instance.

#include <cstdint>
#include <span>
#include <vector>

namespace ncpm::core {

inline constexpr std::int32_t kNone = -1;
/// Rank reported for unacceptable posts (compares worse than everything).
inline constexpr std::int32_t kNoRank = INT32_MAX;

class Instance {
 public:
  /// Strictly-ordered lists: lists[a] = posts of a in decreasing preference.
  static Instance strict(std::int32_t num_posts, std::vector<std::vector<std::int32_t>> lists,
                         bool with_last_resorts = true);
  /// Lists with ties: groups[a][k] = the posts applicant a ranks k+1 (tied).
  static Instance with_ties(std::int32_t num_posts,
                            std::vector<std::vector<std::vector<std::int32_t>>> groups,
                            bool with_last_resorts = true);

  std::int32_t num_applicants() const noexcept {
    return static_cast<std::int32_t>(list_off_.size()) - 1;
  }
  std::int32_t num_posts() const noexcept { return num_posts_; }
  bool has_last_resorts() const noexcept { return has_last_resorts_; }
  bool strict_prefs() const noexcept { return strict_; }

  /// Extended post-id space: real posts then (when enabled) last resorts.
  std::int32_t total_posts() const noexcept {
    return has_last_resorts_ ? num_posts_ + num_applicants() : num_posts_;
  }
  std::int32_t last_resort(std::int32_t a) const;
  bool is_last_resort(std::int32_t p) const noexcept { return p >= num_posts_; }

  /// a's acceptable real posts in preference order (ties adjacent).
  std::span<const std::int32_t> posts_of(std::int32_t a) const {
    const auto i = static_cast<std::size_t>(a);
    return {posts_.data() + list_off_[i], list_off_[i + 1] - list_off_[i]};
  }
  /// 1-based rank of each entry of posts_of(a) (equal rank = tie).
  std::span<const std::int32_t> ranks_of(std::int32_t a) const {
    const auto i = static_cast<std::size_t>(a);
    return {ranks_.data() + list_off_[i], list_off_[i + 1] - list_off_[i]};
  }
  std::size_t list_length(std::int32_t a) const {
    const auto i = static_cast<std::size_t>(a);
    return list_off_[i + 1] - list_off_[i];
  }
  /// Number of distinct ranks on a's list (its last resort ranks one below).
  std::int32_t num_ranks(std::int32_t a) const { return num_ranks_[static_cast<std::size_t>(a)]; }
  /// Largest num_ranks over all applicants (0 for an empty instance).
  std::int32_t max_ranks() const noexcept { return max_ranks_; }

  /// Rank of extended post p for applicant a; l(a) ranks num_ranks(a)+1,
  /// anything unacceptable ranks kNoRank.
  std::int32_t rank_of(std::int32_t a, std::int32_t p) const;

  /// True iff a strictly prefers extended post p to extended post q, where
  /// kNone means "unmatched" and ranks below any acceptable post.
  bool prefers(std::int32_t a, std::int32_t p, std::int32_t q) const;

 private:
  Instance() = default;
  void build(std::int32_t num_posts, bool with_last_resorts,
             const std::vector<std::vector<std::vector<std::int32_t>>>& groups);

  std::int32_t num_posts_ = 0;
  bool has_last_resorts_ = true;
  bool strict_ = true;
  std::int32_t max_ranks_ = 0;
  std::vector<std::size_t> list_off_;   // CSR offsets, size A+1
  std::vector<std::int32_t> posts_;     // preference order
  std::vector<std::int32_t> ranks_;     // 1-based rank per entry
  std::vector<std::int32_t> num_ranks_; // #distinct ranks per applicant
  // Per-applicant entries sorted by post id, for O(log L) rank lookup.
  std::vector<std::int32_t> lookup_posts_;
  std::vector<std::int32_t> lookup_ranks_;
};

}  // namespace ncpm::core
