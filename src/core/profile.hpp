#pragma once
// Matching profiles and the lexicographic orders of Section IV-E.
//
// The profile of matching M is the tuple (x_1, ..., x_{R+1}) where x_k
// counts the applicants matched to their rank-k post and R+1 is the
// last-resort rank bucket. The paper encodes rank-maximal / fair popular
// matchings as huge integer weights (n^(R+1), Õ(n) bits); we keep the exact
// profile vectors instead and compare them directly:
//   * rank-maximal order >_R: lexicographically from rank 1 downwards,
//     larger is better;
//   * fair order <_F: lexicographically from the last-resort bucket
//     upwards, smaller is better (a fair matching minimises high-rank use).
//
// Both orders are translation-invariant total orders on Z^(R+1) — i.e.
// (Z^(R+1), +, order) is an ordered abelian group — which is exactly the
// property that lets Algorithm 3's per-component greedy remain optimal for
// profile-valued margins: the maximum of a sum of independent choices is
// the sum of per-choice maxima under any translation-invariant order.

#include <cstdint>
#include <vector>

namespace ncpm::core {

class Profile {
 public:
  Profile() = default;
  /// dim = number of rank buckets (max rank + 1 for the last resort).
  explicit Profile(std::size_t dim) : counts_(dim, 0) {}

  std::size_t dim() const noexcept { return counts_.size(); }
  /// Bucket k holds the count for 1-based rank k+1 (bucket 0 = rank 1).
  std::int64_t at(std::size_t rank_bucket) const { return counts_.at(rank_bucket); }
  std::int64_t& operator[](std::size_t rank_bucket) { return counts_[rank_bucket]; }

  Profile& operator+=(const Profile& other);
  Profile& operator-=(const Profile& other);
  friend Profile operator+(Profile a, const Profile& b) { return a += b; }
  friend Profile operator-(Profile a, const Profile& b) { return a -= b; }
  bool operator==(const Profile& other) const { return counts_ == other.counts_; }

  bool is_zero() const noexcept;

  /// True iff a precedes b in the rank-maximal order (a is worse than b).
  static bool rank_maximal_less(const Profile& a, const Profile& b);
  /// True iff a precedes b in the fair order (a is better than b).
  static bool fair_less(const Profile& a, const Profile& b);

 private:
  std::vector<std::int64_t> counts_;
};

}  // namespace ncpm::core
