#pragma once
// Algorithm 2: NC applicant-complete matching in the reduced graph G'.
//
// Every applicant has degree exactly 2 in G' (edges to f(a) and s(a)); posts
// have arbitrary degree. The algorithm repeats, until no post has degree 1:
//   * decompose the alive graph into maximal paths through degree-2 vertices
//     (one half-edge pointer-jumping pass, graph/path_decomposition.hpp);
//   * for every maximal path with a degree-1 post end v0, match the edges at
//     even distance from v0 and delete the matched vertices.
// Lemma 2 bounds the number of iterations by ceil(log2 n) + 1. Afterwards
// all surviving posts have degree >= 2 while applicants still have degree 2;
// either |P| < |A| and no applicant-complete matching exists (Hall), or the
// residual graph is 2-regular — a disjoint union of even cycles — and
// two_regular_perfect_matching finishes the job.
//
// The round engine is zero-allocation and work-proportional: the alive edge
// set lives in a compacted array (rebuilt each round by a parallel prefix
// sum over the survival flags), every per-round buffer is leased once from
// a Workspace, and per-vertex state is only ever reset at the endpoints the
// surviving edges touch. Each while-round therefore costs Θ(m_alive log
// m_alive) work — not Θ(m) — and, once the workspace is warm (after the
// first round, or immediately when the caller reuses a workspace across
// calls), performs no heap allocation.
//
// Vertex space: applicant a -> a; extended post p -> num_applicants + p.
// Edge ids: 2a = (a, f(a)), 2a+1 = (a, s(a)).

#include <cstdint>
#include <vector>

#include "core/instance.hpp"
#include "core/reduced_graph.hpp"
#include "pram/counters.hpp"
#include "pram/workspace.hpp"

namespace ncpm::core {

struct ApplicantCompleteResult {
  bool exists = false;
  /// Per applicant: the matched post in extended ids (f(a) or s(a)).
  std::vector<std::int32_t> post_of;
  /// Iterations of the while-loop — the quantity Lemma 2 bounds by
  /// ceil(log2 n) + 1.
  std::uint64_t while_rounds = 0;
  /// Workspace buffer growths during the first while-round (warm-up) and
  /// during all later rounds. The later-rounds count is the zero-allocation
  /// guarantee of the round engine: it stays 0 once the workspace is warm.
  std::uint64_t workspace_allocs_first_round = 0;
  std::uint64_t workspace_allocs_later_rounds = 0;
};

ApplicantCompleteResult applicant_complete_matching(const Instance& inst, const ReducedGraph& rg,
                                                    pram::NcCounters* counters = nullptr);

/// Workspace-owning variant: all round-engine scratch is leased from `ws`,
/// which the caller may reuse across calls (and across instances — buffers
/// are re-sized, never assumed clean) to amortise even the first-round
/// warm-up away.
ApplicantCompleteResult applicant_complete_matching(const Instance& inst, const ReducedGraph& rg,
                                                    pram::Workspace& ws,
                                                    pram::NcCounters* counters = nullptr);

}  // namespace ncpm::core
