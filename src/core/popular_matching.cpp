#include "core/popular_matching.hpp"

#include "core/applicant_complete.hpp"
#include "core/reduced_graph.hpp"
#include "obs/profiler.hpp"

namespace ncpm::core {

std::optional<matching::Matching> find_popular_matching(const Instance& inst,
                                                        pram::NcCounters* counters,
                                                        PopularRunStats* stats) {
  pram::Workspace ws;
  return find_popular_matching(inst, ws, counters, stats);
}

std::optional<matching::Matching> find_popular_matching(const Instance& inst,
                                                        pram::Workspace& ws,
                                                        pram::NcCounters* counters,
                                                        PopularRunStats* stats) {
  pram::Executor& ex = ws.exec();
  std::optional<ReducedGraph> rg_holder;
  {
    obs::PhaseScope phase(ws.profiler(), obs::Phase::kReducedGraph);
    rg_holder.emplace(build_reduced_graph(inst, counters, ex));
  }
  const ReducedGraph& rg = *rg_holder;
  ApplicantCompleteResult ac = applicant_complete_matching(inst, rg, ws, counters);
  if (stats != nullptr) {
    stats->while_rounds = ac.while_rounds;
    stats->workspace_allocs_first_round = ac.workspace_allocs_first_round;
    stats->workspace_allocs_later_rounds = ac.workspace_allocs_later_rounds;
  }
  if (!ac.exists) return std::nullopt;

  const auto n_a = static_cast<std::size_t>(inst.num_applicants());
  const auto n_ext = static_cast<std::size_t>(inst.total_posts());
  obs::PhaseScope extract_phase(ws.profiler(), obs::Phase::kExtract);

  // Which extended posts are matched?
  auto post_matched = ws.take<std::uint8_t>(n_ext, std::uint8_t{0});
  ex.parallel_for(n_a, [&](std::size_t a) {
    post_matched[static_cast<std::size_t>(ac.post_of[a])] = 1;  // injective writes
  });
  pram::add_round(counters, n_a);

  // Promote one applicant per unmatched f-post (line 5-7 of Algorithm 1).
  // f^-1 sets are disjoint, so the parallel writes touch distinct applicants.
  ex.parallel_for(n_ext, [&](std::size_t p) {
    if (rg.is_f_post[p] == 0 || post_matched[p] != 0) return;
    const auto candidates = rg.f_inverse(static_cast<std::int32_t>(p));
    const std::int32_t a = candidates[0];  // deterministic: smallest applicant id
    ac.post_of[static_cast<std::size_t>(a)] = static_cast<std::int32_t>(p);
  });
  pram::add_round(counters, n_ext);

  matching::Matching m(inst.num_applicants(), inst.total_posts());
  ex.parallel_for(n_a, [&](std::size_t a) {
    m.set_pair_unchecked(static_cast<std::int32_t>(a), ac.post_of[a]);
  });
  pram::add_round(counters, n_a);
  m.rebuild_inverse_and_size();
  return m;
}

}  // namespace ncpm::core
