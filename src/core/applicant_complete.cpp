#include "core/applicant_complete.hpp"

#include <atomic>
#include <stdexcept>

#include "graph/path_decomposition.hpp"
#include "matching/two_regular.hpp"
#include "pram/parallel.hpp"

namespace ncpm::core {

ApplicantCompleteResult applicant_complete_matching(const Instance& inst, const ReducedGraph& rg,
                                                    pram::NcCounters* counters) {
  const auto n_a = static_cast<std::size_t>(inst.num_applicants());
  const auto n_vertices = n_a + static_cast<std::size_t>(inst.total_posts());
  const auto post_vertex = [&](std::int32_t p) {
    return static_cast<std::int32_t>(n_a) + p;
  };

  ApplicantCompleteResult result;
  result.post_of.assign(n_a, kNone);
  if (n_a == 0) {
    result.exists = true;
    return result;
  }

  // Edge 2a = (a, f(a)), edge 2a+1 = (a, s(a)).
  const std::size_t m = 2 * n_a;
  std::vector<std::int32_t> eu(m), ev(m);
  std::vector<std::uint8_t> edge_alive(m, 1);
  std::vector<std::uint8_t> vertex_alive(n_vertices, 0);
  pram::parallel_for(n_a, [&](std::size_t a) {
    const auto av = static_cast<std::int32_t>(a);
    eu[2 * a] = av;
    ev[2 * a] = post_vertex(rg.f_post[a]);
    eu[2 * a + 1] = av;
    ev[2 * a + 1] = post_vertex(rg.s_post[a]);
    vertex_alive[a] = 1;
    vertex_alive[static_cast<std::size_t>(ev[2 * a])] = 1;      // benign CRCW common write
    vertex_alive[static_cast<std::size_t>(ev[2 * a + 1])] = 1;
  });
  pram::add_round(counters, n_a);

  std::vector<std::uint8_t> matched_vertex(n_vertices, 0);

  while (true) {
    const graph::HalfEdgeStructure s(n_vertices, eu, ev, edge_alive, counters);

    // Any alive post of degree 1? (Posts are vertices >= n_a.)
    const bool have_degree_one = pram::parallel_any(n_vertices - n_a, [&](std::size_t i) {
      const auto v = static_cast<std::int32_t>(n_a + i);
      return vertex_alive[static_cast<std::size_t>(v)] != 0 && s.degree(v) == 1;
    });
    if (!have_degree_one) break;
    ++result.while_rounds;

    // Per half-edge matching rule. For a half-edge h on the traversal that
    // starts at the degree-1 end v0 of its maximal path, the edge of h lies
    // at distance rank[h0] - rank[h] from v0, where h0 is the start
    // half-edge of the traversal (recovered as rev(head[rev(h)])). Edges at
    // even distance are matched. When both path ends have degree 1, only the
    // traversal from the smaller-id end acts.
    const auto& ranking = s.ranking();
    pram::parallel_for(2 * m, [&](std::size_t hs) {
      const auto h = static_cast<std::int32_t>(hs);
      const auto e = static_cast<std::size_t>(h >> 1);
      if (edge_alive[e] == 0) return;
      if (ranking.reaches_terminal[hs] == 0) return;  // on an all-degree-2 cycle
      const std::int32_t hr = graph::HalfEdgeStructure::rev(h);
      if (ranking.reaches_terminal[static_cast<std::size_t>(hr)] == 0) return;
      const std::int32_t h0 = graph::HalfEdgeStructure::rev(
          ranking.head[static_cast<std::size_t>(hr)]);
      const std::int32_t v0 = s.source(h0);
      if (s.degree(v0) != 1) return;
      const std::int32_t vend = s.target(ranking.head[hs]);
      if (s.degree(vend) == 1 && vend < v0) return;  // the other traversal acts
      const std::int64_t d = ranking.rank[static_cast<std::size_t>(h0)] - ranking.rank[hs];
      if ((d & 1) != 0) return;
      // Matched edge: record and mark both endpoints dead. Each edge is
      // selected by at most one traversal, so the writes are exclusive.
      const auto a = static_cast<std::size_t>(e >> 1);  // edges 2a, 2a+1 belong to applicant a
      result.post_of[a] = ev[e] - static_cast<std::int32_t>(n_a);
      matched_vertex[static_cast<std::size_t>(eu[e])] = 1;
      matched_vertex[static_cast<std::size_t>(ev[e])] = 1;
    });
    pram::add_round(counters, 2 * m);

    // Delete matched vertices and their incident edges.
    std::uint8_t progressed = 0;
    pram::parallel_for(n_vertices, [&](std::size_t v) {
      if (matched_vertex[v] != 0 && vertex_alive[v] != 0) {
        vertex_alive[v] = 0;
        std::atomic_ref<std::uint8_t>(progressed).store(1, std::memory_order_relaxed);
      }
    });
    pram::add_round(counters, n_vertices);
    pram::parallel_for(m, [&](std::size_t e) {
      if (edge_alive[e] == 0) return;
      if (vertex_alive[static_cast<std::size_t>(eu[e])] == 0 ||
          vertex_alive[static_cast<std::size_t>(ev[e])] == 0) {
        edge_alive[e] = 0;
      }
    });
    pram::add_round(counters, m);

    if (progressed == 0) {
      throw std::logic_error(
          "applicant_complete_matching: degree-1 post without progress (internal invariant)");
    }
  }

  // Count survivors. Posts of degree 0 are dropped here, as in the paper.
  const graph::HalfEdgeStructure final_s(n_vertices, eu, ev, edge_alive, counters);
  const std::size_t applicants_left =
      pram::parallel_count(n_a, [&](std::size_t a) { return vertex_alive[a] != 0; });
  const std::size_t posts_left = pram::parallel_count(n_vertices - n_a, [&](std::size_t i) {
    const auto v = n_a + i;
    return vertex_alive[v] != 0 && final_s.degree(static_cast<std::int32_t>(v)) >= 1;
  });
  if (posts_left < applicants_left) {
    result.exists = false;
    return result;
  }

  // Residual graph is 2-regular: disjoint even cycles (bipartite).
  if (applicants_left > 0) {
    const auto cycle_edges = matching::two_regular_perfect_matching(
        n_vertices, eu, ev, edge_alive, counters);
    if (!cycle_edges.has_value()) {
      throw std::logic_error("applicant_complete_matching: odd cycle in bipartite residual");
    }
    for (const auto e : *cycle_edges) {
      const auto a = static_cast<std::size_t>(e >> 1);
      result.post_of[a] = ev[static_cast<std::size_t>(e)] - static_cast<std::int32_t>(n_a);
    }
  }

  // Applicant-complete iff every applicant got a post.
  const bool missing =
      pram::parallel_any(n_a, [&](std::size_t a) { return result.post_of[a] == kNone; });
  if (missing) {
    throw std::logic_error("applicant_complete_matching: unmatched applicant after cycle phase");
  }
  result.exists = true;
  return result;
}

}  // namespace ncpm::core
