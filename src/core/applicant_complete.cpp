#include "core/applicant_complete.hpp"

#include <atomic>
#include <stdexcept>
#include <utility>

#include "graph/path_decomposition.hpp"
#include "matching/two_regular.hpp"
#include "obs/profiler.hpp"
#include "pram/scan.hpp"

namespace ncpm::core {

ApplicantCompleteResult applicant_complete_matching(const Instance& inst, const ReducedGraph& rg,
                                                    pram::NcCounters* counters) {
  pram::Workspace ws;
  return applicant_complete_matching(inst, rg, ws, counters);
}

ApplicantCompleteResult applicant_complete_matching(const Instance& inst, const ReducedGraph& rg,
                                                    pram::Workspace& ws,
                                                    pram::NcCounters* counters) {
  const auto n_a = static_cast<std::size_t>(inst.num_applicants());
  const auto n_vertices = n_a + static_cast<std::size_t>(inst.total_posts());

  pram::Executor& ex = ws.exec();
  ApplicantCompleteResult result;
  result.post_of.assign(n_a, kNone);
  if (n_a == 0) {
    result.exists = true;
    return result;
  }

  // Original edge ids: 2a = (a, f(a)), 2a+1 = (a, s(a)). The engine works
  // on a compacted array of the alive edges; `edge_id` maps a compact slot
  // back to the original id (whose applicant is edge_id >> 1).
  const std::size_t m = 2 * n_a;
  auto edge_id_a = ws.take<std::int32_t>(m);
  auto eu_a = ws.take<std::int32_t>(m);
  auto ev_a = ws.take<std::int32_t>(m);
  auto edge_id_b = ws.take<std::int32_t>(m);
  auto eu_b = ws.take<std::int32_t>(m);
  auto ev_b = ws.take<std::int32_t>(m);
  auto keep = ws.take<std::uint32_t>(m);
  auto kpos = ws.take<std::uint32_t>(m);
  // Vertex state. `vertex_alive` starts all-1: applicants always carry two
  // edges, and posts outside G' are filtered by the degree >= 1 test below.
  auto vertex_alive = ws.take<std::uint8_t>(n_vertices, std::uint8_t{1});
  auto matched_vertex = ws.take<std::uint8_t>(n_vertices, std::uint8_t{0});
  graph::AliveEdgePaths paths(n_vertices, m, ws);

  std::span<std::int32_t> edge_id = edge_id_a.span();
  std::span<std::int32_t> eu = eu_a.span();
  std::span<std::int32_t> ev = ev_a.span();
  std::span<std::int32_t> edge_id_next = edge_id_b.span();
  std::span<std::int32_t> eu_next = eu_b.span();
  std::span<std::int32_t> ev_next = ev_b.span();

  ex.parallel_for(n_a, [&](std::size_t a) {
    const auto av = static_cast<std::int32_t>(a);
    const auto pv = [&](std::int32_t p) { return static_cast<std::int32_t>(n_a) + p; };
    edge_id[2 * a] = static_cast<std::int32_t>(2 * a);
    eu[2 * a] = av;
    ev[2 * a] = pv(rg.f_post[a]);
    edge_id[2 * a + 1] = static_cast<std::int32_t>(2 * a + 1);
    eu[2 * a + 1] = av;
    ev[2 * a + 1] = pv(rg.s_post[a]);
  });
  pram::add_round(counters, n_a);

  std::size_t ma = m;  // surviving (compacted) edges
  while (true) {
    const std::uint64_t allocs_at = ws.heap_allocations();
    // Degrees, two-slot incidence, successors and ranking over the
    // compacted edges — Θ(ma log ma) work, nothing proportional to m or n.
    paths.rebuild(eu.first(ma), ev.first(ma), ws, counters);

    // Any alive post of degree 1? Every such post is the `ev` endpoint of
    // some surviving edge, so scanning the compacted edges is a complete
    // check — no per-post frontier re-scan.
    const bool have_degree_one = ex.parallel_any(
        ma, [&](std::size_t e) { return paths.degree(ev[e]) == 1; });
    if (!have_degree_one) break;
    ++result.while_rounds;

    // Per half-edge matching rule. For a half-edge h on the traversal that
    // starts at the degree-1 end v0 of its maximal path, the edge of h lies
    // at distance rank[h0] - rank[h] from v0, where h0 is the start
    // half-edge of the traversal (recovered as rev(head[rev(h)])). Edges at
    // even distance are matched. When both path ends have degree 1, only the
    // traversal from the smaller-id end acts.
    const std::size_t nh = 2 * ma;
    const auto head = paths.head();
    const auto rank = paths.rank();
    const auto reaches = paths.reaches_terminal();
    ex.parallel_for(nh, [&](std::size_t hs) {
      const auto h = static_cast<std::int32_t>(hs);
      const auto e = static_cast<std::size_t>(h >> 1);
      if (reaches[hs] == 0) return;  // on an all-degree-2 cycle
      const std::int32_t hr = graph::AliveEdgePaths::rev(h);
      if (reaches[static_cast<std::size_t>(hr)] == 0) return;
      const std::int32_t h0 =
          graph::AliveEdgePaths::rev(head[static_cast<std::size_t>(hr)]);
      const std::int32_t v0 = paths.source(h0);
      if (paths.degree(v0) != 1) return;
      const std::int32_t vend = paths.target(head[hs]);
      if (paths.degree(vend) == 1 && vend < v0) return;  // the other traversal acts
      const std::int64_t d = rank[static_cast<std::size_t>(h0)] - rank[hs];
      if ((d & 1) != 0) return;
      // Matched edge: record and mark both endpoints dead. Each edge is
      // selected by at most one traversal, so the writes are exclusive.
      const auto a = static_cast<std::size_t>(edge_id[e] >> 1);
      result.post_of[a] = ev[e] - static_cast<std::int32_t>(n_a);
      matched_vertex[static_cast<std::size_t>(eu[e])] = 1;
      matched_vertex[static_cast<std::size_t>(ev[e])] = 1;
    });
    pram::add_round(counters, nh);

    // Delete matched vertices. Newly matched vertices are endpoints of
    // surviving edges, so the edge array is the frontier to scan.
    std::uint8_t progressed = 0;
    ex.parallel_for(ma, [&](std::size_t e) {
      for (const std::int32_t v : {eu[e], ev[e]}) {
        const auto vi = static_cast<std::size_t>(v);
        if (matched_vertex[vi] != 0 &&
            std::atomic_ref<std::uint8_t>(vertex_alive[vi])
                    .exchange(0, std::memory_order_relaxed) != 0) {
          std::atomic_ref<std::uint8_t>(progressed).store(1, std::memory_order_relaxed);
        }
      }
    });
    pram::add_round(counters, ma);
    if (progressed == 0) {
      throw std::logic_error(
          "applicant_complete_matching: degree-1 post without progress (internal invariant)");
    }

    // Compact the survivors (both endpoints still alive) for the next round.
    {
      obs::PhaseScope phase(ws.profiler(), obs::Phase::kCompaction);
      ex.parallel_for(ma, [&](std::size_t e) {
        keep[e] = (vertex_alive[static_cast<std::size_t>(eu[e])] != 0 &&
                   vertex_alive[static_cast<std::size_t>(ev[e])] != 0)
                      ? 1u
                      : 0u;
      });
      pram::add_round(counters, ma);
      const std::uint32_t ma_next = pram::exclusive_scan<std::uint32_t>(
          keep.span().first(ma), kpos.span().first(ma), ws, counters);
      ex.parallel_for(ma, [&](std::size_t e) {
        if (keep[e] == 0) return;
        const auto p = static_cast<std::size_t>(kpos[e]);
        edge_id_next[p] = edge_id[e];
        eu_next[p] = eu[e];
        ev_next[p] = ev[e];
      });
      pram::add_round(counters, ma);
      std::swap(edge_id, edge_id_next);
      std::swap(eu, eu_next);
      std::swap(ev, ev_next);
      ma = static_cast<std::size_t>(ma_next);
    }

    const std::uint64_t delta = ws.heap_allocations() - allocs_at;
    if (result.while_rounds == 1) {
      result.workspace_allocs_first_round += delta;
    } else {
      result.workspace_allocs_later_rounds += delta;
    }
  }

  // Count survivors. Posts of degree 0 are dropped here, as in the paper.
  // The in-loop degrees are only valid at endpoints of surviving edges, so
  // recompute them cleanly (one full pass, outside the round loop).
  auto final_deg = ws.take<std::int32_t>(n_vertices, std::int32_t{0});
  ex.parallel_for(ma, [&](std::size_t e) {
    std::atomic_ref<std::int32_t>(final_deg[static_cast<std::size_t>(eu[e])])
        .fetch_add(1, std::memory_order_relaxed);
    std::atomic_ref<std::int32_t>(final_deg[static_cast<std::size_t>(ev[e])])
        .fetch_add(1, std::memory_order_relaxed);
  });
  pram::add_round(counters, ma);
  const std::size_t applicants_left =
      ex.parallel_count(n_a, [&](std::size_t a) { return vertex_alive[a] != 0; });
  const std::size_t posts_left = ex.parallel_count(n_vertices - n_a, [&](std::size_t i) {
    const auto v = n_a + i;
    return vertex_alive[v] != 0 && final_deg[v] >= 1;
  });
  if (posts_left < applicants_left) {
    result.exists = false;
    return result;
  }

  // Residual graph is 2-regular: disjoint even cycles (bipartite).
  if (applicants_left > 0) {
    obs::PhaseScope phase(ws.profiler(), obs::Phase::kTwoRegular);
    const auto cycle_edges = matching::two_regular_perfect_matching(
        n_vertices, eu.first(ma), ev.first(ma), {}, ws, counters);
    if (!cycle_edges.has_value()) {
      throw std::logic_error("applicant_complete_matching: odd cycle in bipartite residual");
    }
    for (const auto e : *cycle_edges) {
      const auto es = static_cast<std::size_t>(e);
      const auto a = static_cast<std::size_t>(edge_id[es] >> 1);
      result.post_of[a] = ev[es] - static_cast<std::int32_t>(n_a);
    }
  }

  // Applicant-complete iff every applicant got a post.
  const bool missing =
      ex.parallel_any(n_a, [&](std::size_t a) { return result.post_of[a] == kNone; });
  if (missing) {
    throw std::logic_error("applicant_complete_matching: unmatched applicant after cycle phase");
  }
  result.exists = true;
  return result;
}

}  // namespace ncpm::core
