#include "core/optimal_popular.hpp"

#include <stdexcept>

#include "core/popular_matching.hpp"
#include "core/reduced_graph.hpp"
#include "core/switching_graph.hpp"

namespace ncpm::core {

namespace {

/// Bucket index of extended post p for applicant a: rank-1 posts in bucket
/// 0, ..., last resorts in the final bucket regardless of list length (the
/// paper counts them at rank n2+1).
std::size_t bucket_of(const Instance& inst, std::int32_t a, std::int32_t p, std::size_t dim) {
  if (inst.is_last_resort(p)) return dim - 1;
  return static_cast<std::size_t>(inst.rank_of(a, p)) - 1;
}

}  // namespace

matching::Matching optimize_weight(const Instance& inst, const matching::Matching& popular,
                                   const WeightFn& weight, bool maximize, pram::Workspace& ws,
                                   pram::NcCounters* counters) {
  const ReducedGraph rg = build_reduced_graph(inst, counters, ws.exec());
  const SwitchingEngine engine(inst, rg, popular, counters, ws.exec());
  const std::size_t n_ext = engine.pseudoforest().size();

  // Per-vertex delta: gain for the out-edge applicant when it switches.
  // WeightFn is user code — evaluate sequentially (it may not be thread-safe).
  auto delta = ws.take<std::int64_t>(n_ext, std::int64_t{0});
  const auto out = engine.out_applicant();
  for (std::size_t v = 0; v < n_ext; ++v) {
    const std::int32_t a = out[v];
    if (a == kNone) continue;
    const std::int32_t to = engine.pseudoforest().next[v];
    const std::int64_t d = weight(a, to) - weight(a, static_cast<std::int32_t>(v));
    delta[v] = maximize ? d : -d;
  }
  pram::add_round(counters, n_ext);

  const auto report = engine.margins_from_deltas(delta.span(), counters);
  const auto choices = engine.best_choices(report, counters);
  return engine.apply(choices, counters);
}

matching::Matching optimize_weight(const Instance& inst, const matching::Matching& popular,
                                   const WeightFn& weight, bool maximize,
                                   pram::NcCounters* counters) {
  pram::Workspace ws;
  return optimize_weight(inst, popular, weight, maximize, ws, counters);
}

std::optional<matching::Matching> find_optimal_popular(const Instance& inst,
                                                       const WeightFn& weight, bool maximize,
                                                       pram::Workspace& ws,
                                                       pram::NcCounters* counters) {
  const auto popular = find_popular_matching(inst, ws, counters);
  if (!popular.has_value()) return std::nullopt;
  return optimize_weight(inst, *popular, weight, maximize, ws, counters);
}

std::optional<matching::Matching> find_optimal_popular(const Instance& inst,
                                                       const WeightFn& weight, bool maximize,
                                                       pram::NcCounters* counters) {
  pram::Workspace ws;
  return find_optimal_popular(inst, weight, maximize, ws, counters);
}

Profile matching_profile(const Instance& inst, const matching::Matching& m) {
  const auto dim = static_cast<std::size_t>(inst.max_ranks()) + 1;
  Profile profile(dim);
  for (std::int32_t a = 0; a < inst.num_applicants(); ++a) {
    const std::int32_t p = m.right_of(a);
    if (p == matching::kNone) {
      throw std::invalid_argument("matching_profile: matching is not applicant-complete");
    }
    ++profile[bucket_of(inst, a, p, dim)];
  }
  return profile;
}

namespace {

/// Shared driver for the two profile orders. `better(x, y)` = x strictly
/// improves on y.
matching::Matching optimize_profile(const Instance& inst, const matching::Matching& popular,
                                    const std::function<bool(const Profile&, const Profile&)>& better,
                                    pram::Workspace& ws, pram::NcCounters* counters) {
  pram::Executor& ex = ws.exec();
  const ReducedGraph rg = build_reduced_graph(inst, counters, ex);
  const SwitchingEngine engine(inst, rg, popular, counters, ex);
  const std::size_t n_ext = engine.pseudoforest().size();
  const auto dim = static_cast<std::size_t>(inst.max_ranks()) + 1;
  const auto out = engine.out_applicant();
  const auto& pf = engine.pseudoforest();

  // One int64 margin pass per profile bucket; a switch's profile delta at
  // vertex v is +1 in the bucket of the new post, -1 in the old post's.
  // The delta buffer is leased once and rewritten per bucket.
  auto delta = ws.take<std::int64_t>(n_ext);
  std::int64_t* const delta_data = delta.data();
  std::vector<SwitchingEngine::MarginReport> reports;
  reports.reserve(dim);
  for (std::size_t k = 0; k < dim; ++k) {
    ex.parallel_for(n_ext, [&](std::size_t v) {
      const std::int32_t a = out[v];
      std::int64_t d = 0;
      if (a != kNone) {
        const std::int32_t to = pf.next[v];
        if (bucket_of(inst, a, to, dim) == k) ++d;
        if (bucket_of(inst, a, static_cast<std::int32_t>(v), dim) == k) --d;
      }
      delta_data[v] = d;
    });
    pram::add_round(counters, n_ext);
    reports.push_back(engine.margins_from_deltas(delta.span(), counters));
  }

  const auto path_profile = [&](std::int32_t q) {
    Profile p(dim);
    for (std::size_t k = 0; k < dim; ++k) p[k] = reports[k].path_margin[static_cast<std::size_t>(q)];
    return p;
  };
  const auto cycle_profile = [&](std::int32_t root) {
    Profile p(dim);
    for (std::size_t k = 0; k < dim; ++k) {
      p[k] = reports[k].cycle_margin[static_cast<std::size_t>(root)];
    }
    return p;
  };

  // Per-component selection under the profile order. Orchestration is
  // sequential over components (polynomial work; the margin passes above
  // carry the NC depth), candidates visited in ascending id for determinism.
  const Profile zero(dim);
  std::vector<SwitchingEngine::Choice> choices;
  for (const auto label : engine.nontrivial_components()) {
    if (engine.component_has_cycle(label)) {
      std::int32_t root = kNone;
      const auto& analysis = engine.analysis();
      for (std::size_t v = 0; v < n_ext; ++v) {
        if (analysis.component[v] == label && analysis.on_cycle[v] != 0 &&
            analysis.cycle_root[v] == static_cast<std::int32_t>(v)) {
          root = static_cast<std::int32_t>(v);
          break;
        }
      }
      if (root != kNone && better(cycle_profile(root), zero)) {
        choices.push_back({root, true});
      }
    } else {
      Profile best = zero;
      std::int32_t best_q = kNone;
      for (const auto q : engine.path_starts_of_component(label)) {
        const Profile candidate = path_profile(q);
        if (better(candidate, best)) {
          best = candidate;
          best_q = q;
        }
      }
      if (best_q != kNone) choices.push_back({best_q, false});
    }
  }
  return engine.apply(choices, counters);
}

}  // namespace

std::optional<matching::Matching> find_rank_maximal_popular(const Instance& inst,
                                                            pram::Workspace& ws,
                                                            pram::NcCounters* counters) {
  const auto popular = find_popular_matching(inst, ws, counters);
  if (!popular.has_value()) return std::nullopt;
  return optimize_profile(
      inst, *popular,
      [](const Profile& x, const Profile& y) { return Profile::rank_maximal_less(y, x); }, ws,
      counters);
}

std::optional<matching::Matching> find_rank_maximal_popular(const Instance& inst,
                                                            pram::NcCounters* counters) {
  pram::Workspace ws;
  return find_rank_maximal_popular(inst, ws, counters);
}

std::optional<matching::Matching> find_fair_popular(const Instance& inst, pram::Workspace& ws,
                                                    pram::NcCounters* counters) {
  const auto popular = find_popular_matching(inst, ws, counters);
  if (!popular.has_value()) return std::nullopt;
  return optimize_profile(
      inst, *popular,
      [](const Profile& x, const Profile& y) { return Profile::fair_less(x, y); }, ws, counters);
}

std::optional<matching::Matching> find_fair_popular(const Instance& inst,
                                                    pram::NcCounters* counters) {
  pram::Workspace ws;
  return find_fair_popular(inst, ws, counters);
}

}  // namespace ncpm::core
