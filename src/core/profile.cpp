#include "core/profile.hpp"

#include <stdexcept>

namespace ncpm::core {

Profile& Profile::operator+=(const Profile& other) {
  if (counts_.size() != other.counts_.size()) {
    throw std::invalid_argument("Profile: dimension mismatch");
  }
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  return *this;
}

Profile& Profile::operator-=(const Profile& other) {
  if (counts_.size() != other.counts_.size()) {
    throw std::invalid_argument("Profile: dimension mismatch");
  }
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] -= other.counts_[i];
  return *this;
}

bool Profile::is_zero() const noexcept {
  for (const auto c : counts_) {
    if (c != 0) return false;
  }
  return true;
}

bool Profile::rank_maximal_less(const Profile& a, const Profile& b) {
  if (a.counts_.size() != b.counts_.size()) {
    throw std::invalid_argument("Profile: dimension mismatch");
  }
  // Compare from rank 1: more applicants at a better rank wins.
  for (std::size_t i = 0; i < a.counts_.size(); ++i) {
    if (a.counts_[i] != b.counts_[i]) return a.counts_[i] < b.counts_[i];
  }
  return false;
}

bool Profile::fair_less(const Profile& a, const Profile& b) {
  if (a.counts_.size() != b.counts_.size()) {
    throw std::invalid_argument("Profile: dimension mismatch");
  }
  // Compare from the worst bucket: fewer applicants at a worse rank wins,
  // so a is better (smaller) when its highest differing bucket is smaller.
  for (std::size_t i = a.counts_.size(); i-- > 0;) {
    if (a.counts_[i] != b.counts_[i]) return a.counts_[i] < b.counts_[i];
  }
  return false;
}

}  // namespace ncpm::core
