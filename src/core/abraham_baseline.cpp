#include "core/abraham_baseline.hpp"

#include <deque>
#include <stdexcept>
#include <vector>

#include "core/reduced_graph.hpp"

namespace ncpm::core {

namespace {

/// Sequential construction of f/s posts (no parallel rounds, no counters).
struct SeqReduced {
  std::vector<std::int32_t> f_post, s_post;
  std::vector<std::uint8_t> is_f_post;
};

SeqReduced build_reduced_sequential(const Instance& inst) {
  const auto n_a = static_cast<std::size_t>(inst.num_applicants());
  SeqReduced rg;
  rg.f_post.resize(n_a);
  rg.s_post.resize(n_a);
  rg.is_f_post.assign(static_cast<std::size_t>(inst.total_posts()), 0);
  for (std::size_t a = 0; a < n_a; ++a) {
    const auto posts = inst.posts_of(static_cast<std::int32_t>(a));
    rg.f_post[a] = posts[0];
    rg.is_f_post[static_cast<std::size_t>(posts[0])] = 1;
  }
  for (std::size_t a = 0; a < n_a; ++a) {
    const auto ai = static_cast<std::int32_t>(a);
    std::int32_t s = kNone;
    for (const auto p : inst.posts_of(ai)) {
      if (rg.is_f_post[static_cast<std::size_t>(p)] == 0) {
        s = p;
        break;
      }
    }
    rg.s_post[a] = s == kNone ? inst.last_resort(ai) : s;
  }
  return rg;
}

}  // namespace

std::optional<matching::Matching> find_popular_matching_sequential(const Instance& inst) {
  if (!inst.strict_prefs() || !inst.has_last_resorts()) {
    throw std::invalid_argument(
        "find_popular_matching_sequential: requires strict lists with last resorts");
  }
  const auto n_a = static_cast<std::size_t>(inst.num_applicants());
  const auto n_ext = static_cast<std::size_t>(inst.total_posts());
  const SeqReduced rg = build_reduced_sequential(inst);

  // Post adjacency in G': per post, the applicants whose f or s edge hits it.
  std::vector<std::vector<std::int32_t>> post_adj(n_ext);
  for (std::size_t a = 0; a < n_a; ++a) {
    post_adj[static_cast<std::size_t>(rg.f_post[a])].push_back(static_cast<std::int32_t>(a));
    post_adj[static_cast<std::size_t>(rg.s_post[a])].push_back(static_cast<std::int32_t>(a));
  }

  std::vector<std::int32_t> post_degree(n_ext, 0);
  std::vector<std::uint8_t> post_alive(n_ext, 0);
  std::vector<std::uint8_t> applicant_alive(n_a, 1);
  for (std::size_t p = 0; p < n_ext; ++p) {
    post_degree[p] = static_cast<std::int32_t>(post_adj[p].size());
    post_alive[p] = post_degree[p] > 0 ? 1 : 0;
  }

  std::vector<std::int32_t> post_of(n_a, kNone);
  const auto other_post = [&](std::size_t a, std::int32_t p) {
    return rg.f_post[a] == p ? rg.s_post[a] : rg.f_post[a];
  };

  // Degree-1 peeling with a work queue.
  std::deque<std::int32_t> q;
  for (std::size_t p = 0; p < n_ext; ++p) {
    if (post_alive[p] != 0 && post_degree[p] == 1) q.push_back(static_cast<std::int32_t>(p));
  }
  const auto alive_neighbor = [&](std::int32_t p) {
    for (const auto a : post_adj[static_cast<std::size_t>(p)]) {
      if (applicant_alive[static_cast<std::size_t>(a)] != 0) return a;
    }
    return kNone;
  };
  while (!q.empty()) {
    const std::int32_t p = q.front();
    q.pop_front();
    if (post_alive[static_cast<std::size_t>(p)] == 0 ||
        post_degree[static_cast<std::size_t>(p)] != 1) {
      continue;  // stale queue entry
    }
    const std::int32_t a = alive_neighbor(p);
    if (a == kNone) throw std::logic_error("baseline: degree-1 post without neighbour");
    post_of[static_cast<std::size_t>(a)] = p;
    post_alive[static_cast<std::size_t>(p)] = 0;
    applicant_alive[static_cast<std::size_t>(a)] = 0;
    const std::int32_t o = other_post(static_cast<std::size_t>(a), p);
    if (post_alive[static_cast<std::size_t>(o)] != 0) {
      if (--post_degree[static_cast<std::size_t>(o)] == 1) q.push_back(o);
      if (post_degree[static_cast<std::size_t>(o)] == 0) post_alive[static_cast<std::size_t>(o)] = 0;
    }
  }

  // Residual check: |P| >= |A| or fail (then the residual is 2-regular).
  std::size_t applicants_left = 0, posts_left = 0;
  for (std::size_t a = 0; a < n_a; ++a) applicants_left += applicant_alive[a];
  for (std::size_t p = 0; p < n_ext; ++p) {
    posts_left += (post_alive[p] != 0 && post_degree[p] > 0) ? 1U : 0U;
  }
  if (posts_left < applicants_left) return std::nullopt;

  // Walk each even cycle, matching alternate edges: start at an alive
  // applicant, repeatedly match (a, f-or-s post) and hop to the post's other
  // alive applicant.
  for (std::size_t a0 = 0; a0 < n_a; ++a0) {
    if (applicant_alive[a0] == 0) continue;
    std::int32_t a = static_cast<std::int32_t>(a0);
    while (applicant_alive[static_cast<std::size_t>(a)] != 0) {
      applicant_alive[static_cast<std::size_t>(a)] = 0;
      // Match a to its alive post: on the first step both f(a) and s(a) are
      // alive and we take f(a); afterwards the post we entered through is
      // dead, leaving exactly one choice.
      const std::int32_t f = rg.f_post[static_cast<std::size_t>(a)];
      const std::int32_t s = rg.s_post[static_cast<std::size_t>(a)];
      const std::int32_t p = post_alive[static_cast<std::size_t>(f)] != 0 ? f : s;
      if (post_alive[static_cast<std::size_t>(p)] == 0) {
        throw std::logic_error("baseline: residual cycle is not 2-regular");
      }
      post_of[static_cast<std::size_t>(a)] = p;
      post_alive[static_cast<std::size_t>(p)] = 0;
      // The next applicant around the cycle: p's other alive applicant.
      std::int32_t next_a = kNone;
      for (const auto cand : post_adj[static_cast<std::size_t>(p)]) {
        if (applicant_alive[static_cast<std::size_t>(cand)] != 0) {
          next_a = cand;
          break;
        }
      }
      if (next_a == kNone) break;  // cycle closed
      a = next_a;
    }
  }

  for (std::size_t a = 0; a < n_a; ++a) {
    if (post_of[a] == kNone) throw std::logic_error("baseline: unmatched applicant");
  }

  // Promote unmatched f-posts.
  std::vector<std::uint8_t> post_matched(n_ext, 0);
  for (std::size_t a = 0; a < n_a; ++a) post_matched[static_cast<std::size_t>(post_of[a])] = 1;
  std::vector<std::uint8_t> claimed(n_ext, 0);
  for (std::size_t a = 0; a < n_a; ++a) {
    const auto f = static_cast<std::size_t>(rg.f_post[a]);
    if (post_matched[f] == 0 && claimed[f] == 0) {
      claimed[f] = 1;  // smallest applicant id with this f-post claims it
      post_of[a] = static_cast<std::int32_t>(f);
    }
  }

  matching::Matching m(inst.num_applicants(), inst.total_posts());
  for (std::size_t a = 0; a < n_a; ++a) {
    m.set_pair_unchecked(static_cast<std::int32_t>(a), post_of[a]);
  }
  m.rebuild_inverse_and_size();
  return m;
}

}  // namespace ncpm::core
