#include "core/switching_graph.hpp"

#include "core/popular_matching.hpp"

#include <atomic>
#include <functional>
#include <limits>
#include <optional>
#include <stdexcept>

#include "pram/executor.hpp"

namespace ncpm::core {

namespace {

inline void atomic_store_flag(std::uint8_t& slot) {
  std::atomic_ref<std::uint8_t>(slot).store(1, std::memory_order_relaxed);
}

inline void atomic_max64(std::int64_t& slot, std::int64_t value) {
  std::atomic_ref<std::int64_t> ref(slot);
  std::int64_t cur = ref.load(std::memory_order_relaxed);
  while (value > cur && !ref.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
}

inline void atomic_min32(std::int32_t& slot, std::int32_t value) {
  std::atomic_ref<std::int32_t> ref(slot);
  std::int32_t cur = ref.load(std::memory_order_relaxed);
  while (value < cur && !ref.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
}

}  // namespace

SwitchingEngine::SwitchingEngine(const Instance& inst, const ReducedGraph& rg,
                                 const matching::Matching& m, pram::NcCounters* counters,
                                 pram::Executor& ex)
    : ex_(&ex) {
  const auto n_a = static_cast<std::size_t>(inst.num_applicants());
  const auto n_ext = static_cast<std::size_t>(inst.total_posts());
  post_of_.resize(n_a);
  pf_.next.assign(n_ext, pram::kNone);
  out_applicant_.assign(n_ext, kNone);
  is_s_post_.assign(n_ext, 0);

  // M must live inside the reduced graph (Theorem 1 condition (ii)).
  // Validate outside the parallel region: a body must not throw.
  const bool invalid = ex.parallel_any(n_a, [&](std::size_t a) {
    const std::int32_t mp = m.right_of(static_cast<std::int32_t>(a));
    return mp != rg.f_post[a] && mp != rg.s_post[a];
  });
  if (invalid) {
    throw std::invalid_argument("SwitchingEngine: matching is not within the reduced graph");
  }

  // Edges: M(a) -> O_M(a), labelled a.
  ex.parallel_for(n_a, [&](std::size_t a) {
    const auto ai = static_cast<std::int32_t>(a);
    const std::int32_t mp = m.right_of(ai);
    post_of_[a] = mp;
    const std::int32_t f = rg.f_post[a];
    const std::int32_t s = rg.s_post[a];
    const std::int32_t other = mp == f ? s : f;
    pf_.next[static_cast<std::size_t>(mp)] = other;  // exclusive: M is a matching
    out_applicant_[static_cast<std::size_t>(mp)] = ai;
    atomic_store_flag(is_s_post_[static_cast<std::size_t>(s)]);
  });
  pram::add_round(counters, n_a);

  cycles_ = graph::analyze_cycles(pf_, graph::CycleMethod::PointerDoubling, counters, ex);

  has_cycle_.assign(n_ext, 0);
  ex.parallel_for(n_ext, [&](std::size_t v) {
    if (cycles_.on_cycle[v] != 0) {
      atomic_store_flag(has_cycle_[static_cast<std::size_t>(cycles_.component[v])]);
    }
  });
  pram::add_round(counters, n_ext);

  // Broken successors: terminals at sinks and at cycle roots.
  broken_succ_.resize(n_ext);
  ex.parallel_for(n_ext, [&](std::size_t v) {
    const bool terminal =
        pf_.is_sink(v) ||
        (cycles_.on_cycle[v] != 0 && cycles_.cycle_root[v] == static_cast<std::int32_t>(v));
    broken_succ_[v] = terminal ? static_cast<std::int32_t>(v) : pf_.next[v];
  });
  pram::add_round(counters, n_ext);
  steps_ = pram::list_rank(broken_succ_, counters, ex);

  // Binary-lifting tables for path marking: lift_[k][v] = broken_succ_^(2^k)(v).
  const std::uint32_t levels = pram::ceil_log2(n_ext == 0 ? 1 : n_ext) + 1;
  lift_.resize(levels);
  lift_[0] = broken_succ_;
  for (std::uint32_t k = 1; k < levels; ++k) {
    lift_[k] = pram::compose(lift_[k - 1], lift_[k - 1], counters, ex);
  }
}

SwitchingEngine::MarginReport SwitchingEngine::margins(std::span<const std::int64_t> post_value,
                                                       pram::NcCounters* counters) const {
  const std::size_t n_ext = pf_.size();
  if (post_value.size() != n_ext) {
    throw std::invalid_argument("SwitchingEngine::margins: post_value size mismatch");
  }
  // Vertex delta = the change contributed by the applicant on v's out-edge.
  std::vector<std::int64_t> delta(n_ext, 0);
  ex_->parallel_for(n_ext, [&](std::size_t v) {
    if (out_applicant_[v] != kNone) {
      delta[v] = post_value[static_cast<std::size_t>(pf_.next[v])] - post_value[v];
    }
  });
  pram::add_round(counters, n_ext);
  return margins_from_deltas(delta, counters);
}

SwitchingEngine::MarginReport SwitchingEngine::margins_from_deltas(
    std::span<const std::int64_t> vertex_delta, pram::NcCounters* counters) const {
  const std::size_t n_ext = pf_.size();
  if (vertex_delta.size() != n_ext) {
    throw std::invalid_argument("SwitchingEngine::margins_from_deltas: size mismatch");
  }
  std::vector<std::int64_t> weight(vertex_delta.begin(), vertex_delta.end());
  const auto ranking = pram::weighted_list_rank(broken_succ_, weight, counters, *ex_);

  MarginReport report;
  report.path_margin = ranking.rank;
  report.cycle_margin.assign(n_ext, 0);
  ex_->parallel_for(n_ext, [&](std::size_t v) {
    if (cycles_.on_cycle[v] != 0 && cycles_.cycle_root[v] == static_cast<std::int32_t>(v)) {
      // The root is the ranking terminal, so its own weight is re-added.
      const auto succ = static_cast<std::size_t>(pf_.next[v]);
      report.cycle_margin[v] = weight[v] + ranking.rank[succ];
    }
  });
  pram::add_round(counters, n_ext);
  return report;
}

std::vector<SwitchingEngine::Choice> SwitchingEngine::best_choices(
    const MarginReport& report, pram::NcCounters* counters) const {
  const std::size_t n_ext = pf_.size();
  std::vector<Choice> choices;

  // Cycle components: apply the unique switching cycle iff its margin > 0.
  std::vector<std::uint8_t> cycle_chosen(n_ext, 0);
  ex_->parallel_for(n_ext, [&](std::size_t v) {
    if (cycles_.on_cycle[v] != 0 && cycles_.cycle_root[v] == static_cast<std::int32_t>(v) &&
        report.cycle_margin[v] > 0) {
      cycle_chosen[v] = 1;
    }
  });
  pram::add_round(counters, n_ext);

  // Tree components: the best-margin s-post start, ties to the smallest id.
  std::vector<std::int64_t> best_margin(n_ext, std::numeric_limits<std::int64_t>::min());
  ex_->parallel_for(n_ext, [&](std::size_t q) {
    if (is_s_post_[q] == 0 || out_applicant_[q] == kNone) return;
    const auto comp = static_cast<std::size_t>(cycles_.component[q]);
    if (has_cycle_[comp] != 0) return;
    atomic_max64(best_margin[comp], report.path_margin[q]);
  });
  pram::add_round(counters, n_ext);
  std::vector<std::int32_t> best_start(n_ext, std::numeric_limits<std::int32_t>::max());
  ex_->parallel_for(n_ext, [&](std::size_t q) {
    if (is_s_post_[q] == 0 || out_applicant_[q] == kNone) return;
    const auto comp = static_cast<std::size_t>(cycles_.component[q]);
    if (has_cycle_[comp] != 0) return;
    if (report.path_margin[q] == best_margin[comp]) {
      atomic_min32(best_start[comp], static_cast<std::int32_t>(q));
    }
  });
  pram::add_round(counters, n_ext);

  for (std::size_t v = 0; v < n_ext; ++v) {
    if (cycle_chosen[v] != 0) {
      choices.push_back({static_cast<std::int32_t>(v), true});
    }
    if (best_margin[v] > 0 && best_start[v] != std::numeric_limits<std::int32_t>::max()) {
      choices.push_back({best_start[v], false});
    }
  }
  return choices;
}

matching::Matching SwitchingEngine::apply(std::span<const Choice> choices,
                                          pram::NcCounters* counters) const {
  const std::size_t n_ext = pf_.size();
  const std::size_t n_a = post_of_.size();

  std::vector<std::uint8_t> cycle_root_chosen(n_ext, 0);
  std::vector<std::int32_t> path_start(n_ext, kNone);  // per component label
  for (const auto& c : choices) {
    const auto key = static_cast<std::size_t>(c.key);
    if (c.is_cycle) {
      if (cycles_.on_cycle[key] == 0 || cycles_.cycle_root[key] != c.key) {
        throw std::invalid_argument("SwitchingEngine::apply: cycle key is not a cycle root");
      }
      cycle_root_chosen[key] = 1;
    } else {
      if (is_s_post_[key] == 0 || out_applicant_[key] == kNone) {
        throw std::invalid_argument("SwitchingEngine::apply: path start is not a matched s-post");
      }
      const auto comp = static_cast<std::size_t>(cycles_.component[key]);
      if (has_cycle_[comp] != 0) {
        throw std::invalid_argument("SwitchingEngine::apply: path start lies in a cycle component");
      }
      if (path_start[comp] != kNone) {
        throw std::invalid_argument("SwitchingEngine::apply: two switches in one component");
      }
      path_start[comp] = c.key;
    }
  }

  // Which vertices switch? Cycle members of chosen cycles; vertices on the
  // q* -> sink walk for chosen paths. v lies on that walk iff
  // steps(v) <= steps(q*) and broken_succ^(steps(q*) - steps(v))(q*) == v,
  // evaluated with the binary-lifting tables in O(log n) each.
  std::vector<std::uint8_t> switches(n_ext, 0);
  ex_->parallel_for(n_ext, [&](std::size_t v) {
    if (out_applicant_[v] == kNone) return;  // sinks and isolated posts never move
    if (cycles_.on_cycle[v] != 0) {
      if (cycle_root_chosen[static_cast<std::size_t>(cycles_.cycle_root[v])] != 0) switches[v] = 1;
      return;
    }
    const auto comp = static_cast<std::size_t>(cycles_.component[v]);
    const std::int32_t q = path_start[comp];
    if (q == kNone) return;
    const std::int64_t delta = steps_.rank[static_cast<std::size_t>(q)] - steps_.rank[v];
    if (delta < 0) return;
    std::int32_t u = q;
    std::uint64_t bits = static_cast<std::uint64_t>(delta);
    for (std::uint32_t k = 0; bits != 0; ++k, bits >>= 1U) {
      if ((bits & 1U) != 0) u = lift_[k][static_cast<std::size_t>(u)];
    }
    if (u == static_cast<std::int32_t>(v)) switches[v] = 1;
  });
  pram::add_round(counters, n_ext);

  matching::Matching out(static_cast<std::int32_t>(n_a), static_cast<std::int32_t>(n_ext));
  ex_->parallel_for(n_a, [&](std::size_t a) {
    out.set_pair_unchecked(static_cast<std::int32_t>(a), post_of_[a]);
  });
  pram::add_round(counters, n_a);
  ex_->parallel_for(n_ext, [&](std::size_t v) {
    if (switches[v] != 0) {
      out.set_pair_unchecked(out_applicant_[v], pf_.next[v]);
    }
  });
  pram::add_round(counters, n_ext);
  out.rebuild_inverse_and_size();
  return out;
}

matching::Matching SwitchingEngine::apply_best(std::span<const std::int64_t> post_value,
                                               pram::NcCounters* counters) const {
  const auto report = margins(post_value, counters);
  const auto choices = best_choices(report, counters);
  return apply(choices, counters);
}

std::vector<std::int32_t> SwitchingEngine::path_starts_of_component(std::int32_t label) const {
  std::vector<std::int32_t> starts;
  for (std::size_t q = 0; q < pf_.size(); ++q) {
    if (is_s_post_[q] != 0 && out_applicant_[q] != kNone &&
        cycles_.component[q] == label && has_cycle_[static_cast<std::size_t>(label)] == 0) {
      starts.push_back(static_cast<std::int32_t>(q));
    }
  }
  return starts;
}

std::vector<std::int32_t> SwitchingEngine::nontrivial_components() const {
  std::vector<std::uint8_t> seen(pf_.size(), 0);
  std::vector<std::int32_t> labels;
  for (std::size_t v = 0; v < pf_.size(); ++v) {
    if (out_applicant_[v] == kNone) continue;  // only components with edges
    const auto comp = static_cast<std::size_t>(cycles_.component[v]);
    if (seen[comp] == 0) {
      seen[comp] = 1;
      labels.push_back(static_cast<std::int32_t>(comp));
    }
  }
  return labels;
}

std::optional<std::uint64_t> count_popular_matchings(const Instance& inst,
                                                     pram::NcCounters* counters) {
  pram::Workspace ws;
  return count_popular_matchings(inst, ws, counters);
}

std::optional<std::uint64_t> count_popular_matchings(const Instance& inst, pram::Workspace& ws,
                                                     pram::NcCounters* counters) {
  const auto seed = find_popular_matching(inst, ws, counters);
  if (!seed.has_value()) return std::nullopt;
  return count_popular_matchings(inst, *seed, counters, ws.exec());
}

std::uint64_t count_popular_matchings(const Instance& inst, const matching::Matching& popular,
                                      pram::NcCounters* counters, pram::Executor& ex) {
  const ReducedGraph rg = build_reduced_graph(inst, counters, ex);
  const SwitchingEngine engine(inst, rg, popular, counters, ex);
  std::uint64_t count = 1;
  const auto saturating_mul = [&count](std::uint64_t factor) {
    if (factor != 0 && count > std::numeric_limits<std::uint64_t>::max() / factor) {
      count = std::numeric_limits<std::uint64_t>::max();
    } else {
      count *= factor;
    }
  };
  for (const auto label : engine.nontrivial_components()) {
    if (engine.component_has_cycle(label)) {
      saturating_mul(2);
    } else {
      saturating_mul(1 + static_cast<std::uint64_t>(engine.path_starts_of_component(label).size()));
    }
  }
  return count;
}

std::vector<matching::Matching> all_popular_matchings_via_switching(const Instance& inst,
                                                                    const ReducedGraph& rg,
                                                                    const matching::Matching& m) {
  const SwitchingEngine engine(inst, rg, m);
  const auto labels = engine.nontrivial_components();

  // Per component: list the possible switches (none, the cycle, or one path).
  std::vector<std::vector<std::optional<SwitchingEngine::Choice>>> options;
  for (const auto label : labels) {
    std::vector<std::optional<SwitchingEngine::Choice>> opts;
    opts.push_back(std::nullopt);
    if (engine.component_has_cycle(label)) {
      // The unique cycle, identified by its root.
      for (std::size_t v = 0; v < engine.pseudoforest().size(); ++v) {
        if (engine.analysis().component[v] == label && engine.analysis().on_cycle[v] != 0 &&
            engine.analysis().cycle_root[v] == static_cast<std::int32_t>(v)) {
          opts.push_back(SwitchingEngine::Choice{static_cast<std::int32_t>(v), true});
        }
      }
    } else {
      for (const auto q : engine.path_starts_of_component(label)) {
        opts.push_back(SwitchingEngine::Choice{q, false});
      }
    }
    options.push_back(std::move(opts));
  }

  std::vector<matching::Matching> result;
  std::vector<SwitchingEngine::Choice> current;
  const std::function<void(std::size_t)> recurse = [&](std::size_t i) {
    if (i == options.size()) {
      result.push_back(engine.apply(current));
      return;
    }
    for (const auto& opt : options[i]) {
      if (opt.has_value()) {
        current.push_back(*opt);
        recurse(i + 1);
        current.pop_back();
      } else {
        recurse(i + 1);
      }
    }
  };
  recurse(0);
  return result;
}

}  // namespace ncpm::core
