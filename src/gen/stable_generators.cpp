#include "gen/stable_generators.hpp"

#include <algorithm>
#include <numeric>
#include <random>

namespace ncpm::gen {

stable::StableInstance random_stable_instance(std::int32_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  const auto make_side = [&] {
    std::vector<std::vector<std::int32_t>> prefs(static_cast<std::size_t>(n));
    for (auto& list : prefs) {
      list.resize(static_cast<std::size_t>(n));
      std::iota(list.begin(), list.end(), 0);
      std::shuffle(list.begin(), list.end(), rng);
    }
    return prefs;
  };
  auto men = make_side();
  auto women = make_side();
  return stable::StableInstance::from_lists(std::move(men), std::move(women));
}

stable::StableInstance cyclic_stable_instance(std::int32_t n) {
  std::vector<std::vector<std::int32_t>> men(static_cast<std::size_t>(n)),
      women(static_cast<std::size_t>(n));
  for (std::int32_t m = 0; m < n; ++m) {
    for (std::int32_t i = 0; i < n; ++i) {
      men[static_cast<std::size_t>(m)].push_back((m + i) % n);
    }
  }
  for (std::int32_t w = 0; w < n; ++w) {
    for (std::int32_t i = 0; i < n; ++i) {
      women[static_cast<std::size_t>(w)].push_back((w + 1 + i) % n);
    }
  }
  return stable::StableInstance::from_lists(std::move(men), std::move(women));
}

}  // namespace ncpm::gen
