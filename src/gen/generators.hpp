#pragma once
// Seeded workload generators for tests, benchmarks and examples.
//
// Popular matchings do not exist for every instance (heavy contention on
// first choices kills them), so besides uniform/Zipf random instances the
// module provides *planted-solvable* families (distinct first choices make
// a -> f(a) an applicant-complete matching of G'), adversarial families for
// the Lemma 2 round bound (binary trees peel one level of maximal paths per
// round), and contention families guaranteed to admit no popular matching.

#include <cstdint>

#include "core/instance.hpp"
#include "graph/bipartite_graph.hpp"

namespace ncpm::gen {

struct StrictConfig {
  std::int32_t num_applicants = 100;
  std::int32_t num_posts = 100;
  std::int32_t list_min = 2;   ///< minimum list length (>= 1)
  std::int32_t list_max = 5;   ///< maximum list length (<= num_posts)
  double zipf_s = 0.0;         ///< post-popularity skew; 0 = uniform
  std::uint64_t seed = 1;
};

/// Fully random strict instance (may or may not admit a popular matching).
core::Instance random_strict_instance(const StrictConfig& cfg);

struct SolvableConfig {
  std::int32_t num_applicants = 100;
  std::int32_t num_posts = 250;  ///< must be >= num_applicants + #f-posts
  std::int32_t list_min = 2;
  std::int32_t list_max = 5;
  /// Fraction of applicants whose whole list consists of f-posts, forcing
  /// s(a) = l(a) — the A1 applicants that give Algorithm 3 room to improve.
  double all_f_fraction = 0.0;
  /// Average number of applicants sharing one first choice (>= 1). Higher
  /// contention produces deeper peeling structures and richer switching
  /// graphs while solvability stays planted: every applicant keeps a
  /// dedicated, pairwise-distinct s-post, so a -> s(a) is always an
  /// applicant-complete matching of G'.
  double contention = 1.0;
  std::uint64_t seed = 1;
};

/// Planted-solvable instance: a popular matching always exists.
core::Instance solvable_strict_instance(const SolvableConfig& cfg);

/// n >= 3 applicants sharing one first and one second choice: the reduced
/// graph violates Hall's condition, so no popular matching exists.
core::Instance contention_instance(std::int32_t n_applicants);

/// Reduced graph shaped as a complete binary tree of the given depth
/// (posts at the nodes, applicants on the edges): Algorithm 2 peels
/// maximal paths level by level, exercising the Lemma 2 round bound.
core::Instance binary_tree_instance(std::int32_t depth);

struct TiesConfig {
  std::int32_t num_applicants = 100;
  std::int32_t num_posts = 100;
  std::int32_t list_min = 2;
  std::int32_t list_max = 5;
  double tie_prob = 0.3;  ///< probability that an entry ties with its predecessor
  std::uint64_t seed = 1;
};

/// Random instance with ties.
core::Instance random_ties_instance(const TiesConfig& cfg);

/// Random bipartite graph with ~avg_degree edges per left vertex (distinct
/// neighbours). For the Theorem 11 reduction benchmarks.
graph::BipartiteGraph random_bipartite(std::int32_t n_left, std::int32_t n_right,
                                       double avg_degree, std::uint64_t seed);

}  // namespace ncpm::gen
