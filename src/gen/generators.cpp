#include "gen/generators.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <random>
#include <stdexcept>
#include <unordered_set>

namespace ncpm::gen {

namespace {

/// Draw `count` distinct posts by the (possibly skewed) popularity weights.
std::vector<std::int32_t> sample_distinct(std::mt19937_64& rng, std::int32_t num_posts,
                                          std::int32_t count,
                                          const std::vector<double>& cumulative) {
  std::vector<std::int32_t> out;
  out.reserve(static_cast<std::size_t>(count));
  std::unordered_set<std::int32_t> seen;
  seen.reserve(static_cast<std::size_t>(count));
  std::uniform_real_distribution<double> unif(0.0, cumulative.back());
  while (static_cast<std::int32_t>(out.size()) < count) {
    std::int32_t p;
    if (cumulative.size() == 1) {
      p = 0;
    } else {
      const double x = unif(rng);
      p = static_cast<std::int32_t>(
          std::lower_bound(cumulative.begin(), cumulative.end(), x) - cumulative.begin());
      p = std::min(p, num_posts - 1);
    }
    if (seen.insert(p).second) out.push_back(p);
  }
  return out;
}

std::vector<double> popularity_cdf(std::int32_t num_posts, double zipf_s) {
  std::vector<double> cdf(static_cast<std::size_t>(num_posts));
  double acc = 0.0;
  for (std::int32_t p = 0; p < num_posts; ++p) {
    acc += zipf_s == 0.0 ? 1.0 : 1.0 / std::pow(static_cast<double>(p) + 1.0, zipf_s);
    cdf[static_cast<std::size_t>(p)] = acc;
  }
  return cdf;
}

}  // namespace

core::Instance random_strict_instance(const StrictConfig& cfg) {
  if (cfg.list_min < 1 || cfg.list_max < cfg.list_min || cfg.list_max > cfg.num_posts) {
    throw std::invalid_argument("random_strict_instance: bad list-length bounds");
  }
  std::mt19937_64 rng(cfg.seed);
  const auto cdf = popularity_cdf(cfg.num_posts, cfg.zipf_s);
  std::uniform_int_distribution<std::int32_t> len_dist(cfg.list_min, cfg.list_max);
  std::vector<std::vector<std::int32_t>> lists(static_cast<std::size_t>(cfg.num_applicants));
  for (auto& list : lists) {
    list = sample_distinct(rng, cfg.num_posts, len_dist(rng), cdf);
  }
  return core::Instance::strict(cfg.num_posts, std::move(lists));
}

core::Instance solvable_strict_instance(const SolvableConfig& cfg) {
  if (cfg.list_min < 2 || cfg.list_max < cfg.list_min || cfg.list_max > cfg.num_posts) {
    throw std::invalid_argument("solvable_strict_instance: bad list-length bounds");
  }
  if (cfg.contention < 1.0) {
    throw std::invalid_argument("solvable_strict_instance: contention must be >= 1");
  }
  const auto n_a = static_cast<std::size_t>(cfg.num_applicants);
  if (n_a == 0) return core::Instance::strict(cfg.num_posts, {});
  const auto n_groups = static_cast<std::size_t>(std::max<double>(
      1.0, static_cast<double>(cfg.num_applicants) / cfg.contention));
  if (static_cast<std::size_t>(cfg.num_posts) < n_a + n_groups) {
    throw std::invalid_argument(
        "solvable_strict_instance: needs num_posts >= num_applicants + num_applicants/contention");
  }
  std::mt19937_64 rng(cfg.seed);

  // Disjoint pools: group posts perm[0..n_groups) carry the (shared) first
  // choices; perm[n_groups..n_groups+n_a) are dedicated s-targets, one per
  // applicant, which plants the applicant-complete matching a -> s(a).
  std::vector<std::int32_t> perm(static_cast<std::size_t>(cfg.num_posts));
  std::iota(perm.begin(), perm.end(), 0);
  std::shuffle(perm.begin(), perm.end(), rng);

  std::uniform_int_distribution<std::size_t> group_pick(0, n_groups - 1);
  std::vector<std::size_t> group(n_a);
  std::vector<std::uint8_t> group_used(n_groups, 0);
  for (std::size_t a = 0; a < n_a; ++a) {
    group[a] = group_pick(rng);
    group_used[group[a]] = 1;
  }
  // Only posts that are someone's first choice are f-posts; contention
  // filler must come from this used set, or it would silently become s(a).
  std::vector<std::int32_t> used_groups;
  for (std::size_t g = 0; g < n_groups; ++g) {
    if (group_used[g] != 0) used_groups.push_back(static_cast<std::int32_t>(g));
  }
  std::uniform_int_distribution<std::size_t> used_pick(0, used_groups.size() - 1);

  std::uniform_int_distribution<std::int32_t> len_dist(cfg.list_min, cfg.list_max);
  std::uniform_real_distribution<double> unif01(0.0, 1.0);
  std::uniform_int_distribution<std::int32_t> any_post(0, cfg.num_posts - 1);

  std::vector<std::vector<std::int32_t>> lists(n_a);
  for (std::size_t a = 0; a < n_a; ++a) {
    const std::int32_t len = len_dist(rng);
    const std::int32_t f = perm[group[a]];
    std::vector<std::int32_t> list;
    list.reserve(static_cast<std::size_t>(len) + 1);
    list.push_back(f);
    std::unordered_set<std::int32_t> seen{f};
    const bool all_f = unif01(rng) < cfg.all_f_fraction;
    if (!all_f) {
      // A few f-post fillers above the planted s-target, then the target,
      // then an arbitrary tail. Fillers are f-posts, so s(a) stays planted.
      const std::int32_t fillers = static_cast<std::int32_t>(rng() % 3);
      for (std::int32_t i = 0; i < fillers && static_cast<std::int32_t>(list.size()) + 1 < len;
           ++i) {
        const std::int32_t p = perm[static_cast<std::size_t>(used_groups[used_pick(rng)])];
        if (seen.insert(p).second) list.push_back(p);
      }
      const std::int32_t s_target = perm[n_groups + a];
      seen.insert(s_target);
      list.push_back(s_target);
      while (static_cast<std::int32_t>(list.size()) < len) {
        const std::int32_t p = any_post(rng);
        if (seen.insert(p).second) list.push_back(p);
      }
    } else {
      // Entire list inside the f-posts: s(a) = l(a), an A1 applicant.
      while (static_cast<std::int32_t>(list.size()) < len &&
             static_cast<std::size_t>(list.size()) < used_groups.size()) {
        const std::int32_t p = perm[static_cast<std::size_t>(used_groups[used_pick(rng)])];
        if (seen.insert(p).second) list.push_back(p);
      }
    }
    lists[a] = std::move(list);
  }
  return core::Instance::strict(cfg.num_posts, std::move(lists));
}

core::Instance contention_instance(std::int32_t n_applicants) {
  if (n_applicants < 3) throw std::invalid_argument("contention_instance: needs n >= 3");
  // Everyone: first choice post 0, second choice post 1. f = {0}, s = {1};
  // G' is K_{n,2}, which cannot be applicant-complete for n >= 3.
  std::vector<std::vector<std::int32_t>> lists(static_cast<std::size_t>(n_applicants), {0, 1});
  return core::Instance::strict(2, std::move(lists));
}

core::Instance binary_tree_instance(std::int32_t depth) {
  if (depth < 1) throw std::invalid_argument("binary_tree_instance: needs depth >= 1");
  // Posts are the nodes of a complete binary tree (heap indexing, root 0);
  // applicant a_v spans the edge {v, parent(v)} for every non-root node v.
  // Nodes at even depth are f-posts (listed first by their applicants),
  // nodes at odd depth are s-posts, so each applicant has one of each and
  // the reduced graph is exactly the tree.
  const std::int32_t num_posts = (1 << (depth + 1)) - 1;
  std::vector<std::vector<std::int32_t>> lists;
  lists.reserve(static_cast<std::size_t>(num_posts) - 1);
  const auto depth_of = [](std::int32_t v) {
    std::int32_t d = 0;
    while (v > 0) {
      v = (v - 1) / 2;
      ++d;
    }
    return d;
  };
  for (std::int32_t v = 1; v < num_posts; ++v) {
    const std::int32_t parent = (v - 1) / 2;
    if (depth_of(v) % 2 == 0) {
      lists.push_back({v, parent});
    } else {
      lists.push_back({parent, v});
    }
  }
  return core::Instance::strict(num_posts, std::move(lists));
}

core::Instance random_ties_instance(const TiesConfig& cfg) {
  if (cfg.list_min < 1 || cfg.list_max < cfg.list_min || cfg.list_max > cfg.num_posts) {
    throw std::invalid_argument("random_ties_instance: bad list-length bounds");
  }
  std::mt19937_64 rng(cfg.seed);
  const auto cdf = popularity_cdf(cfg.num_posts, 0.0);
  std::uniform_int_distribution<std::int32_t> len_dist(cfg.list_min, cfg.list_max);
  std::uniform_real_distribution<double> unif01(0.0, 1.0);
  std::vector<std::vector<std::vector<std::int32_t>>> groups(
      static_cast<std::size_t>(cfg.num_applicants));
  for (auto& applicant_groups : groups) {
    const auto flat = sample_distinct(rng, cfg.num_posts, len_dist(rng), cdf);
    applicant_groups.reserve(flat.size());
    for (std::size_t i = 0; i < flat.size(); ++i) {
      if (i == 0 || unif01(rng) >= cfg.tie_prob) {
        applicant_groups.push_back({flat[i]});
      } else {
        applicant_groups.back().push_back(flat[i]);
      }
    }
  }
  return core::Instance::with_ties(cfg.num_posts, std::move(groups));
}

graph::BipartiteGraph random_bipartite(std::int32_t n_left, std::int32_t n_right,
                                       double avg_degree, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<std::int32_t> right_dist(0, n_right - 1);
  std::poisson_distribution<std::int32_t> deg_dist(avg_degree);
  std::vector<std::pair<std::int32_t, std::int32_t>> edges;
  edges.reserve(static_cast<std::size_t>(
      static_cast<double>(n_left < 0 ? 0 : n_left) * (avg_degree + 1.0)));
  for (std::int32_t l = 0; l < n_left; ++l) {
    const std::int32_t deg = std::min(deg_dist(rng), n_right);
    std::unordered_set<std::int32_t> seen;
    while (static_cast<std::int32_t>(seen.size()) < deg) {
      const std::int32_t r = right_dist(rng);
      if (seen.insert(r).second) edges.emplace_back(l, r);
    }
  }
  return graph::BipartiteGraph(n_left, n_right, std::move(edges));
}

}  // namespace ncpm::gen
