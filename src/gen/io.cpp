#include "gen/io.hpp"

#include <optional>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "gen/tie_groups.hpp"

namespace ncpm::io {

namespace {

void expect(std::istream& in, const std::string& token, const char* context) {
  std::string got;
  if (!(in >> got) || got != token) {
    throw std::runtime_error(std::string("io: expected '") + token + "' while reading " + context);
  }
}

std::int64_t read_int(std::istream& in, const char* context) {
  std::int64_t value = 0;
  if (!(in >> value)) {
    throw std::runtime_error(std::string("io: expected an integer while reading ") + context);
  }
  return value;
}

// Format bound, far above any plausible text file: rejects absurd headers
// ("applicants 2147483647") before they drive multi-gigabyte allocations.
constexpr std::int64_t kMaxCount = 10'000'000;

std::int32_t read_count(std::istream& in, const char* context) {
  const auto value = read_int(in, context);
  if (value < 0 || value > kMaxCount) {
    throw std::runtime_error(std::string("io: count out of range while reading ") + context);
  }
  return static_cast<std::int32_t>(value);
}

// The formats describe exactly one document; leftover non-whitespace content
// means a header/body mismatch and must not be silently dropped.
void expect_eof(std::istream& in, const char* context) {
  in >> std::ws;
  if (in.peek() != std::istream::traits_type::eof()) {
    throw std::runtime_error(std::string("io: trailing content after ") + context);
  }
}

// std::nullopt for anything that is not a plain non-negative int32; the
// caller owns the error message (and its line number).
std::optional<std::int32_t> parse_post_id(const std::string& tok) {
  std::size_t consumed = 0;
  long value = 0;
  try {
    value = std::stol(tok, &consumed);
  } catch (const std::exception&) {
    return std::nullopt;
  }
  if (consumed != tok.size() || value < 0 || value > INT32_MAX) return std::nullopt;
  return static_cast<std::int32_t>(value);
}

}  // namespace

std::string write_instance(const core::Instance& inst) {
  std::ostringstream out;
  out << "ncpm-instance v1\n";
  out << "applicants " << inst.num_applicants() << " posts " << inst.num_posts()
      << " last_resorts " << (inst.has_last_resorts() ? 1 : 0) << "\n";
  for (std::int32_t a = 0; a < inst.num_applicants(); ++a) {
    out << a << ":";
    const auto posts = inst.posts_of(a);
    detail::for_each_tie_group(inst.ranks_of(a), [&](std::size_t i, std::size_t j) {
      if (j == i) {
        out << " " << posts[i];
      } else {
        out << " (";
        for (std::size_t k = i; k <= j; ++k) out << " " << posts[k];
        out << " )";
      }
    });
    out << "\n";
  }
  return out.str();
}

core::Instance read_instance(std::istream& in) {
  // Line-tracking parse so every rejection can name the offending line.
  // The header stays token-oriented (any whitespace layout, as with the
  // pre-tracking reader); the applicant body is line-oriented by format.
  std::size_t line_no = 0;
  std::string line;
  std::istringstream tokens(line);  // scanner state: tokens of the current line
  const auto at_line = [&line_no] { return " (line " + std::to_string(line_no) + ")"; };
  const auto bad = [&](const std::string& what) {
    throw std::runtime_error("io: " + what + at_line());
  };
  // Next whitespace-separated token, crossing line boundaries.
  const auto next_token = [&](std::string& tok, const char* context) {
    while (!(tokens >> tok)) {
      if (!std::getline(in, line)) {
        bad(std::string("truncated instance while reading ") + context);
      }
      ++line_no;
      tokens.clear();
      tokens.str(line);
    }
  };
  // Rest of the current line if non-blank, else the next non-blank line
  // (blank lines are insignificant between lines, exactly like the header's
  // token scan). False at end of stream.
  const auto next_body_line = [&]() {
    std::string rest;
    if (std::getline(tokens, rest) && rest.find_first_not_of(" \t\r") != std::string::npos) {
      line = std::move(rest);
      return true;
    }
    tokens.clear();
    tokens.str("");
    while (std::getline(in, line)) {
      ++line_no;
      if (line.find_first_not_of(" \t\r") != std::string::npos) return true;
    }
    return false;
  };
  const auto expect_token = [&](const std::string& token, const char* context) {
    std::string got;
    next_token(got, context);
    if (got != token) bad("expected '" + token + "' while reading " + std::string(context));
  };
  const auto read_header_count = [&](const char* context) {
    std::string tok;
    next_token(tok, context);
    std::int64_t value = 0;
    std::size_t consumed = 0;
    try {
      value = std::stoll(tok, &consumed);
    } catch (const std::exception&) {
      bad(std::string("expected an integer while reading ") + context);
    }
    if (consumed != tok.size()) bad(std::string("expected an integer while reading ") + context);
    if (value < 0 || value > kMaxCount) {
      bad(std::string("count out of range while reading ") + context);
    }
    return static_cast<std::int32_t>(value);
  };

  expect_token("ncpm-instance", "instance header");
  expect_token("v1", "instance header");
  expect_token("applicants", "instance header");
  const std::int32_t n_a = read_header_count("applicant count");
  expect_token("posts", "instance header");
  const std::int32_t n_p = read_header_count("post count");
  expect_token("last_resorts", "instance header");
  std::string flag_tok;
  next_token(flag_tok, "last_resorts flag");
  bool last_resorts = false;
  try {
    std::size_t consumed = 0;
    last_resorts = std::stoll(flag_tok, &consumed) != 0;
    if (consumed != flag_tok.size()) throw std::invalid_argument(flag_tok);
  } catch (const std::exception&) {
    bad("expected an integer while reading last_resorts flag");
  }

  std::vector<std::vector<std::vector<std::int32_t>>> groups(static_cast<std::size_t>(n_a));
  for (std::int32_t a = 0; a < n_a; ++a) {
    if (!next_body_line()) bad("truncated instance");
    std::istringstream ls(line);
    std::string head;
    ls >> head;
    if (head != std::to_string(a) + ":") {
      bad("bad applicant line header '" + head + "'");
    }
    std::string tok;
    bool in_tie = false;
    while (ls >> tok) {
      if (tok == "(") {
        if (in_tie) bad("nested '(' in applicant line");
        in_tie = true;
        groups[static_cast<std::size_t>(a)].emplace_back();
      } else if (tok == ")") {
        if (!in_tie) bad("unmatched ')' in applicant line");
        if (groups[static_cast<std::size_t>(a)].back().empty()) {
          bad("empty tie group in applicant line");
        }
        in_tie = false;
      } else {
        const auto p = parse_post_id(tok);
        if (!p.has_value()) bad("bad post id '" + tok + "'");
        if (in_tie) {
          groups[static_cast<std::size_t>(a)].back().push_back(*p);
        } else {
          groups[static_cast<std::size_t>(a)].push_back({*p});
        }
      }
    }
    if (in_tie) bad("unclosed '(' in applicant line");
  }
  // Exactly one document per stream: any leftover non-blank content — on
  // the scanner's current line (reachable when applicants == 0) or on a
  // later line — is a header/body mismatch and must not be silently dropped.
  {
    std::string rest;
    if (std::getline(tokens, rest) && rest.find_first_not_of(" \t\r") != std::string::npos) {
      bad("trailing content after instance");
    }
  }
  while (std::getline(in, line)) {
    ++line_no;
    if (line.find_first_not_of(" \t\r") != std::string::npos) {
      bad("trailing content after instance");
    }
  }
  return core::Instance::with_ties(n_p, std::move(groups), last_resorts);
}

core::Instance read_instance(const std::string& text) {
  std::istringstream in(text);
  return read_instance(in);
}

std::string write_stable_instance(const stable::StableInstance& inst) {
  std::ostringstream out;
  out << "ncpm-stable v1\n";
  out << "n " << inst.size() << "\n";
  for (std::int32_t m = 0; m < inst.size(); ++m) {
    out << "m" << m << ":";
    for (const auto w : inst.man_prefs(m)) out << " " << w;
    out << "\n";
  }
  for (std::int32_t w = 0; w < inst.size(); ++w) {
    out << "w" << w << ":";
    for (const auto m : inst.woman_prefs(w)) out << " " << m;
    out << "\n";
  }
  return out.str();
}

stable::StableInstance read_stable_instance(std::istream& in) {
  expect(in, "ncpm-stable", "stable header");
  expect(in, "v1", "stable header");
  expect(in, "n", "stable header");
  const auto n = read_count(in, "instance size");
  const auto read_side = [&](char prefix) {
    std::vector<std::vector<std::int32_t>> prefs(static_cast<std::size_t>(n));
    for (std::int32_t p = 0; p < n; ++p) {
      expect(in, std::string(1, prefix) + std::to_string(p) + ":", "preference line");
      auto& list = prefs[static_cast<std::size_t>(p)];
      list.reserve(static_cast<std::size_t>(n));
      for (std::int32_t i = 0; i < n; ++i) {
        list.push_back(static_cast<std::int32_t>(read_int(in, "preference entry")));
      }
    }
    return prefs;
  };
  auto men = read_side('m');
  auto women = read_side('w');
  expect_eof(in, "stable instance");
  return stable::StableInstance::from_lists(std::move(men), std::move(women));
}

stable::StableInstance read_stable_instance(const std::string& text) {
  std::istringstream in(text);
  return read_stable_instance(in);
}

std::string write_matching(const matching::Matching& m) {
  std::ostringstream out;
  out << "ncpm-matching v1\n";
  for (std::int32_t l = 0; l < m.n_left(); ++l) {
    if (m.left_matched(l)) out << l << " " << m.right_of(l) << "\n";
  }
  return out.str();
}

matching::Matching read_matching(std::istream& in, std::int32_t n_left, std::int32_t n_right) {
  expect(in, "ncpm-matching", "matching header");
  expect(in, "v1", "matching header");
  matching::Matching m(n_left, n_right);
  std::int64_t l;
  while (in >> l) {
    const auto r = read_int(in, "matching pair");
    if (l < 0 || l >= n_left || r < 0 || r >= n_right) {
      throw std::runtime_error("io: matching pair out of range");
    }
    m.match(static_cast<std::int32_t>(l), static_cast<std::int32_t>(r));
  }
  if (!in.eof()) {
    throw std::runtime_error("io: bad matching pair");
  }
  return m;
}

matching::Matching read_matching(const std::string& text, std::int32_t n_left,
                                 std::int32_t n_right) {
  std::istringstream in(text);
  return read_matching(in, n_left, n_right);
}

}  // namespace ncpm::io
