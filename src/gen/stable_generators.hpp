#pragma once
// Stable-marriage workload generators.

#include <cstdint>

#include "stable/instance.hpp"

namespace ncpm::gen {

/// Uniformly random complete preference lists on both sides.
stable::StableInstance random_stable_instance(std::int32_t n, std::uint64_t seed);

/// "Cyclic shift" preferences: man m ranks woman (m+i) mod n at position i
/// and women rank men in reverse shifts — a rotation-rich lattice that
/// stresses Algorithm 4 with many exposed rotations per matching.
stable::StableInstance cyclic_stable_instance(std::int32_t n);

}  // namespace ncpm::gen
