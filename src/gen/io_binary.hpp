#pragma once
// ncpm-binary v1 — the length-prefixed binary wire format.
//
// The text formats of io.hpp are for humans; a batch engine ingesting
// millions of instances should not pay a tokenizer. ncpm-binary v1 is a
// stream of self-delimiting records behind a versioned header, every
// integer little-endian:
//
//   header   : magic "NCPMBIN1" (8 bytes), u32 version = 1
//   record   : u8 type (1 = instance, 2 = matching),
//              u64 payload_size, payload_size bytes of payload
//   instance : u32 applicants, u32 posts, u8 flags (bit 0 = last resorts),
//              then per applicant: u32 group_count, per tie group:
//              u32 group_size, group_size * u32 post ids
//   matching : u32 n_left, u32 n_right, u32 pair_count,
//              pair_count * (u32 left, u32 right)
//
// Records are length-prefixed so a reader can stream, skip, or fan out
// records without parsing payloads it does not need. The reader is strict:
// header and version must match, counts are bounded (same 10M format bound
// as the text reader), every payload read is bounds-checked against the
// declared payload size, a record whose payload ends early is "truncated",
// and one that ends late is "trailing bytes" — nothing is silently dropped.

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "core/instance.hpp"
#include "matching/matching.hpp"

namespace ncpm::io {

inline constexpr std::uint32_t kBinaryVersion = 1;
/// 8-byte stream magic.
inline constexpr char kBinaryMagic[8] = {'N', 'C', 'P', 'M', 'B', 'I', 'N', '1'};

enum class BinaryRecord : std::uint8_t {
  kInstance = 1,
  kMatching = 2,
};

/// Magic + version. Call once per stream, before any record.
void write_binary_header(std::ostream& out);
void write_binary_instance(std::ostream& out, const core::Instance& inst);
void write_binary_matching(std::ostream& out, const matching::Matching& m);

/// Streaming reader. Construction validates the header; `peek()` then
/// yields record types until a clean end-of-stream. All failures throw
/// std::runtime_error with an "io-binary:" message.
class BinaryReader {
 public:
  explicit BinaryReader(std::istream& in);

  /// Type of the next record, or std::nullopt at a clean end-of-stream.
  /// Reads (and length-validates) the record into an internal buffer.
  std::optional<BinaryRecord> peek();

  /// Consume the pending record (peek() is called implicitly if needed).
  /// Throws if the next record has a different type.
  core::Instance read_instance();
  matching::Matching read_matching();

  /// Discard the pending record without parsing its payload.
  void skip();

 private:
  void require(BinaryRecord type, const char* what);

  std::istream& in_;
  std::optional<BinaryRecord> pending_;
  std::vector<std::uint8_t> payload_;
};

/// Single-record payload codecs: the byte layout of one record's payload
/// with no stream header and no record header around it. This is the unit
/// ncpm-rpc v1 frames embed (src/net/frame.hpp), so the socket protocol and
/// the batch-file format share one serialisation and cannot diverge. The
/// decoders enforce the same bounds, range checks, and trailing-byte
/// strictness as the stream reader and throw std::runtime_error
/// ("io-binary: ...") on any malformed input.
std::string encode_instance_payload(const core::Instance& inst);
core::Instance decode_instance_payload(const std::uint8_t* data, std::size_t size);
std::string encode_matching_payload(const matching::Matching& m);
matching::Matching decode_matching_payload(const std::uint8_t* data, std::size_t size);

/// Whole-stream convenience: header + every record, which must all be
/// instances (the batch file the CLI's `batch` subcommand consumes).
std::vector<core::Instance> read_binary_instances(std::istream& in);

/// header + one instance record per element, as a string (tests, CLI pack).
std::string write_binary_instances(const std::vector<core::Instance>& instances);

}  // namespace ncpm::io
