#pragma once
// Shared serialisation helper: iterate an applicant's preference list as
// tie groups (maximal runs of equal rank). Both the text and the binary
// writers emit groups through this single definition, so their grouping
// semantics cannot diverge — which is what keeps the text/binary round-trip
// byte-identical.

#include <cstdint>
#include <span>

namespace ncpm::io::detail {

/// Calls `group(first, last)` for each maximal run posts[first..last]
/// sharing one rank, in list order.
template <typename F>
void for_each_tie_group(std::span<const std::int32_t> ranks, F&& group) {
  for (std::size_t i = 0; i < ranks.size();) {
    std::size_t j = i;
    while (j + 1 < ranks.size() && ranks[j + 1] == ranks[i]) ++j;
    group(i, j);
    i = j + 1;
  }
}

}  // namespace ncpm::io::detail
