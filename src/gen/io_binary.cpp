#include "gen/io_binary.hpp"

#include <algorithm>
#include <cstring>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "gen/tie_groups.hpp"

namespace ncpm::io {

namespace {

// Same format bound as the text reader: rejects absurd counts before they
// drive multi-gigabyte allocations.
constexpr std::uint64_t kMaxCount = 10'000'000;
// No legal record (10M applicants, bounded lists) approaches this.
constexpr std::uint64_t kMaxPayload = std::uint64_t{1} << 31;
// A lying payload_size fails at EOF after at most one chunk, not after a
// payload-sized allocation.
constexpr std::size_t kReadChunk = std::size_t{1} << 20;

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("io-binary: " + what);
}

void put_u8(std::string& out, std::uint8_t v) { out.push_back(static_cast<char>(v)); }

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void write_record(std::ostream& out, BinaryRecord type, const std::string& payload) {
  std::string header;
  put_u8(header, static_cast<std::uint8_t>(type));
  put_u64(header, payload.size());
  out.write(header.data(), static_cast<std::streamsize>(header.size()));
  out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  if (!out) fail("write failed");
}

/// Bounds-checked little-endian cursor over one record payload.
class Cursor {
 public:
  Cursor(const std::uint8_t* data, std::size_t size) : data_(data), size_(size) {}

  std::uint8_t u8(const char* what) {
    need(1, what);
    return data_[pos_++];
  }
  std::uint32_t u32(const char* what) {
    need(4, what);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(data_[pos_++]) << (8 * i);
    return v;
  }
  std::uint32_t count(const char* what) {
    const auto v = u32(what);
    if (v > kMaxCount) fail(std::string(what) + " out of range");
    return v;
  }
  void finish(const char* what) const {
    if (pos_ != size_) fail(std::string("trailing bytes in ") + what + " record");
  }

 private:
  void need(std::size_t n, const char* what) const {
    if (size_ - pos_ < n) fail(std::string("truncated ") + what);
  }
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string encode_instance_payload(const core::Instance& inst) {
  std::string payload;
  put_u32(payload, static_cast<std::uint32_t>(inst.num_applicants()));
  put_u32(payload, static_cast<std::uint32_t>(inst.num_posts()));
  put_u8(payload, inst.has_last_resorts() ? 1 : 0);
  for (std::int32_t a = 0; a < inst.num_applicants(); ++a) {
    const auto posts = inst.posts_of(a);
    const auto ranks = inst.ranks_of(a);
    // Tie groups come from the same run detection as the text writer, so
    // the two serialisations cannot diverge.
    std::uint32_t groups = 0;
    detail::for_each_tie_group(ranks, [&](std::size_t, std::size_t) { ++groups; });
    put_u32(payload, groups);
    detail::for_each_tie_group(ranks, [&](std::size_t i, std::size_t j) {
      put_u32(payload, static_cast<std::uint32_t>(j - i + 1));
      for (std::size_t k = i; k <= j; ++k) {
        put_u32(payload, static_cast<std::uint32_t>(posts[k]));
      }
    });
  }
  return payload;
}

std::string encode_matching_payload(const matching::Matching& m) {
  std::string payload;
  put_u32(payload, static_cast<std::uint32_t>(m.n_left()));
  put_u32(payload, static_cast<std::uint32_t>(m.n_right()));
  put_u32(payload, static_cast<std::uint32_t>(m.size()));
  for (std::int32_t l = 0; l < m.n_left(); ++l) {
    if (!m.left_matched(l)) continue;
    put_u32(payload, static_cast<std::uint32_t>(l));
    put_u32(payload, static_cast<std::uint32_t>(m.right_of(l)));
  }
  return payload;
}

core::Instance decode_instance_payload(const std::uint8_t* data, std::size_t size) {
  Cursor cur(data, size);
  const auto n_a = cur.count("applicant count");
  const auto n_p = cur.count("post count");
  const bool last_resorts = (cur.u8("flags") & 1) != 0;
  // Every applicant occupies at least its u32 group count, so a header
  // whose applicant count cannot fit in the declared payload is rejected
  // before the count drives any allocation.
  if ((size - 9) / 4 < n_a) fail("truncated instance");
  std::vector<std::vector<std::vector<std::int32_t>>> groups(n_a);
  for (std::uint32_t a = 0; a < n_a; ++a) {
    const auto n_groups = cur.u32("group count");
    auto& list = groups[a];
    // Every group holds >= 1 post (>= 4 payload bytes), so a lying group
    // count runs out of payload long before it runs out of memory.
    list.reserve(std::min<std::size_t>(n_groups, size / 4));
    for (std::uint32_t g = 0; g < n_groups; ++g) {
      const auto n_posts = cur.u32("tie-group size");
      if (n_posts == 0) fail("empty tie group");
      std::vector<std::int32_t> tier;
      tier.reserve(std::min<std::size_t>(n_posts, size / 4));
      for (std::uint32_t i = 0; i < n_posts; ++i) {
        const auto p = cur.u32("post id");
        if (p >= n_p) fail("post id out of range");
        tier.push_back(static_cast<std::int32_t>(p));
      }
      list.push_back(std::move(tier));
    }
  }
  cur.finish("instance");
  return core::Instance::with_ties(static_cast<std::int32_t>(n_p), std::move(groups),
                                   last_resorts);
}

matching::Matching decode_matching_payload(const std::uint8_t* data, std::size_t size) {
  Cursor cur(data, size);
  const auto n_left = cur.count("left count");
  const auto n_right = cur.count("right count");
  const auto n_pairs = cur.u32("pair count");
  if (n_pairs > n_left) fail("pair count out of range");
  matching::Matching m(static_cast<std::int32_t>(n_left), static_cast<std::int32_t>(n_right));
  for (std::uint32_t i = 0; i < n_pairs; ++i) {
    const auto l = cur.u32("pair left");
    const auto r = cur.u32("pair right");
    if (l >= n_left || r >= n_right) fail("matching pair out of range");
    if (m.left_matched(static_cast<std::int32_t>(l)) ||
        m.right_matched(static_cast<std::int32_t>(r))) {
      fail("matching endpoint claimed twice");
    }
    m.match(static_cast<std::int32_t>(l), static_cast<std::int32_t>(r));
  }
  cur.finish("matching");
  return m;
}

void write_binary_header(std::ostream& out) {
  std::string header(kBinaryMagic, sizeof(kBinaryMagic));
  put_u32(header, kBinaryVersion);
  out.write(header.data(), static_cast<std::streamsize>(header.size()));
  if (!out) fail("write failed");
}

void write_binary_instance(std::ostream& out, const core::Instance& inst) {
  write_record(out, BinaryRecord::kInstance, encode_instance_payload(inst));
}

void write_binary_matching(std::ostream& out, const matching::Matching& m) {
  write_record(out, BinaryRecord::kMatching, encode_matching_payload(m));
}

BinaryReader::BinaryReader(std::istream& in) : in_(in) {
  char magic[sizeof(kBinaryMagic)];
  in_.read(magic, sizeof(magic));
  if (in_.gcount() != static_cast<std::streamsize>(sizeof(magic)) ||
      std::memcmp(magic, kBinaryMagic, sizeof(magic)) != 0) {
    fail("bad magic (not an ncpm-binary stream)");
  }
  char vbytes[4];
  in_.read(vbytes, sizeof(vbytes));
  if (in_.gcount() != static_cast<std::streamsize>(sizeof(vbytes))) fail("truncated header");
  std::uint32_t version = 0;
  for (int i = 0; i < 4; ++i) {
    version |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(vbytes[i])) << (8 * i);
  }
  if (version != kBinaryVersion) fail("unsupported version " + std::to_string(version));
}

std::optional<BinaryRecord> BinaryReader::peek() {
  if (pending_.has_value()) return pending_;
  const int type_byte = in_.get();
  if (type_byte == std::istream::traits_type::eof()) {
    // Only a true end-of-stream ends the record loop; a failed/bad stream
    // (I/O error) must not masquerade as a shorter batch.
    if (in_.bad() || !in_.eof()) fail("stream error at record boundary");
    return std::nullopt;  // clean end
  }
  if (type_byte != static_cast<int>(BinaryRecord::kInstance) &&
      type_byte != static_cast<int>(BinaryRecord::kMatching)) {
    fail("unknown record type " + std::to_string(type_byte));
  }
  char lbytes[8];
  in_.read(lbytes, sizeof(lbytes));
  if (in_.gcount() != static_cast<std::streamsize>(sizeof(lbytes))) {
    fail("truncated record header");
  }
  std::uint64_t size = 0;
  for (int i = 0; i < 8; ++i) {
    size |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(lbytes[i])) << (8 * i);
  }
  if (size > kMaxPayload) fail("payload size out of range");
  payload_.clear();
  payload_.reserve(static_cast<std::size_t>(std::min<std::uint64_t>(size, kReadChunk)));
  std::uint64_t remaining = size;
  while (remaining > 0) {
    const auto chunk = static_cast<std::size_t>(std::min<std::uint64_t>(remaining, kReadChunk));
    const auto old = payload_.size();
    payload_.resize(old + chunk);
    in_.read(reinterpret_cast<char*>(payload_.data() + old), static_cast<std::streamsize>(chunk));
    if (in_.gcount() != static_cast<std::streamsize>(chunk)) fail("truncated record payload");
    remaining -= chunk;
  }
  pending_ = static_cast<BinaryRecord>(type_byte);
  return pending_;
}

void BinaryReader::require(BinaryRecord type, const char* what) {
  const auto next = peek();
  if (!next.has_value()) fail(std::string("end of stream, expected ") + what);
  if (*next != type) fail(std::string("record type mismatch, expected ") + what);
}

core::Instance BinaryReader::read_instance() {
  require(BinaryRecord::kInstance, "instance");
  pending_.reset();
  return decode_instance_payload(payload_.data(), payload_.size());
}

matching::Matching BinaryReader::read_matching() {
  require(BinaryRecord::kMatching, "matching");
  pending_.reset();
  return decode_matching_payload(payload_.data(), payload_.size());
}

void BinaryReader::skip() {
  if (!pending_.has_value() && !peek().has_value()) fail("end of stream, nothing to skip");
  pending_.reset();
}

std::vector<core::Instance> read_binary_instances(std::istream& in) {
  BinaryReader reader(in);
  std::vector<core::Instance> instances;
  while (const auto type = reader.peek()) {
    if (*type != BinaryRecord::kInstance) fail("batch stream holds a non-instance record");
    instances.push_back(reader.read_instance());
  }
  return instances;
}

std::string write_binary_instances(const std::vector<core::Instance>& instances) {
  std::ostringstream out;
  write_binary_header(out);
  for (const auto& inst : instances) write_binary_instance(out, inst);
  return out.str();
}

}  // namespace ncpm::io
