#pragma once
// Plain-text serialisation for instances and matchings.
//
// Instance format (ties in parentheses, one applicant per line):
//   ncpm-instance v1
//   applicants 3 posts 5 last_resorts 1
//   0: 3 ( 1 2 ) 4
//   1: 0
//   2: ( 0 4 )
//
// Stable-marriage format:
//   ncpm-stable v1
//   n 2
//   m0: 0 1
//   m1: 1 0
//   w0: 1 0
//   w1: 0 1
//
// Matching format (extended post ids; unmatched applicants omitted):
//   ncpm-matching v1
//   0 3
//   1 0

#include <iosfwd>
#include <string>

#include "core/instance.hpp"
#include "matching/matching.hpp"
#include "stable/instance.hpp"

namespace ncpm::io {

std::string write_instance(const core::Instance& inst);
core::Instance read_instance(std::istream& in);
core::Instance read_instance(const std::string& text);

std::string write_stable_instance(const stable::StableInstance& inst);
stable::StableInstance read_stable_instance(std::istream& in);
stable::StableInstance read_stable_instance(const std::string& text);

std::string write_matching(const matching::Matching& m);
/// Requires the target shape because the text stores only the pairs.
matching::Matching read_matching(std::istream& in, std::int32_t n_left, std::int32_t n_right);
matching::Matching read_matching(const std::string& text, std::int32_t n_left,
                                 std::int32_t n_right);

}  // namespace ncpm::io
