#pragma once
// NC perfect matching in 2-regular graphs (Algorithm 2, line 17).
//
// After Algorithm 2's while-loop the residual reduced graph is a disjoint
// union of even cycles; "choosing all edges of even distance yields a perfect
// matching". This module implements exactly that in O(log n) pointer-jumping
// rounds over half-edges:
//   * every alive half-edge lies on a directed traversal cycle;
//   * elect the minimum half-edge id of each directed cycle as its label;
//   * of the two opposite traversals of an undirected cycle, only the one
//     holding the globally smaller label proceeds (so each edge is decided
//     exactly once);
//   * break the cycle at the label, list-rank, and select edges at even
//     distance from the root edge.
//
// Works on any disjoint-union-of-cycles graph; returns std::nullopt when a
// cycle has odd length (impossible for the bipartite callers).

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "pram/counters.hpp"
#include "pram/workspace.hpp"

namespace ncpm::matching {

/// Edge ids of a perfect matching of the alive subgraph, where every vertex
/// incident to an alive edge has alive-degree exactly 2. Throws
/// std::invalid_argument if some such vertex has a different degree; returns
/// std::nullopt if some cycle is odd.
std::optional<std::vector<std::int32_t>> two_regular_perfect_matching(
    std::size_t n_vertices, std::span<const std::int32_t> eu, std::span<const std::int32_t> ev,
    std::span<const std::uint8_t> edge_alive, pram::NcCounters* counters = nullptr);

/// Workspace-backed variant: all scratch is leased from `ws`, so a warm
/// workspace makes the whole pass allocation-free (except for the returned
/// edge list). An empty `edge_alive` means every edge is alive — the shape
/// the compacted round engine hands in.
std::optional<std::vector<std::int32_t>> two_regular_perfect_matching(
    std::size_t n_vertices, std::span<const std::int32_t> eu, std::span<const std::int32_t> ev,
    std::span<const std::uint8_t> edge_alive, pram::Workspace& ws,
    pram::NcCounters* counters = nullptr);

}  // namespace ncpm::matching
