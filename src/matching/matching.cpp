#include "matching/matching.hpp"

#include <stdexcept>

namespace ncpm::matching {

Matching::Matching(std::int32_t n_left, std::int32_t n_right) {
  if (n_left < 0 || n_right < 0) throw std::invalid_argument("Matching: negative side size");
  right_of_.assign(static_cast<std::size_t>(n_left), kNone);
  left_of_.assign(static_cast<std::size_t>(n_right), kNone);
}

void Matching::match(std::int32_t l, std::int32_t r) {
  auto& rl = right_of_.at(static_cast<std::size_t>(l));
  auto& lr = left_of_.at(static_cast<std::size_t>(r));
  if (rl != kNone || lr != kNone) {
    throw std::logic_error("Matching::match: endpoint already matched");
  }
  rl = r;
  lr = l;
  ++size_;
}

void Matching::unmatch_left(std::int32_t l) {
  auto& rl = right_of_.at(static_cast<std::size_t>(l));
  if (rl == kNone) return;
  left_of_[static_cast<std::size_t>(rl)] = kNone;
  rl = kNone;
  --size_;
}

void Matching::rebuild_inverse_and_size() {
  left_of_.assign(left_of_.size(), kNone);
  size_ = 0;
  for (std::size_t l = 0; l < right_of_.size(); ++l) {
    const std::int32_t r = right_of_[l];
    if (r == kNone) continue;
    if (r < 0 || static_cast<std::size_t>(r) >= left_of_.size()) {
      throw std::logic_error("Matching: right endpoint out of range");
    }
    if (left_of_[static_cast<std::size_t>(r)] != kNone) {
      throw std::logic_error("Matching: two left vertices share a right vertex");
    }
    left_of_[static_cast<std::size_t>(r)] = static_cast<std::int32_t>(l);
    ++size_;
  }
}

Matching mendelsohn_dulmage(const Matching& ma, const Matching& mb) {
  if (ma.n_left() != mb.n_left() || ma.n_right() != mb.n_right()) {
    throw std::invalid_argument("mendelsohn_dulmage: shape mismatch");
  }
  const std::int32_t nl = ma.n_left();
  const std::int32_t nr = ma.n_right();
  Matching out(nl, nr);

  // Shared pairs belong to every combination and never touch the symmetric
  // difference, so they can be committed up front.
  for (std::int32_t l = 0; l < nl; ++l) {
    const std::int32_t r = ma.right_of(l);
    if (r != kNone && r == mb.right_of(l)) out.match(l, r);
  }

  // Symmetric-difference edges, identified by (left endpoint, which matching).
  const auto a_from_left = [&](std::int32_t l) {
    const std::int32_t r = ma.right_of(l);
    return (r != kNone && r != mb.right_of(l)) ? r : kNone;
  };
  const auto b_from_left = [&](std::int32_t l) {
    const std::int32_t r = mb.right_of(l);
    return (r != kNone && r != ma.right_of(l)) ? r : kNone;
  };
  const auto a_from_right = [&](std::int32_t r) {
    const std::int32_t l = ma.left_of(r);
    return (l != kNone && mb.right_of(l) != r) ? l : kNone;
  };
  const auto b_from_right = [&](std::int32_t r) {
    const std::int32_t l = mb.left_of(r);
    return (l != kNone && ma.right_of(l) != r) ? l : kNone;
  };

  std::vector<std::uint8_t> a_done(static_cast<std::size_t>(nl), 0);
  std::vector<std::uint8_t> b_done(static_cast<std::size_t>(nl), 0);

  struct Edge {
    std::int32_t l, r;
    bool from_a;
  };
  struct WalkEnd {
    bool at_left;  // side of the vertex where the walk stopped
  };

  // Traverse from vertex (at_left, v) along its `use_a` edge, alternating
  // matchings, until no continuing edge exists or the component closes.
  const auto walk = [&](bool at_left, std::int32_t v, bool use_a, std::vector<Edge>& edges) {
    while (true) {
      std::int32_t l, r;
      if (at_left) {
        l = v;
        r = use_a ? a_from_left(l) : b_from_left(l);
        if (r == kNone) return WalkEnd{true};
      } else {
        r = v;
        l = use_a ? a_from_right(r) : b_from_right(r);
        if (l == kNone) return WalkEnd{false};
      }
      auto& done = use_a ? a_done[static_cast<std::size_t>(l)] : b_done[static_cast<std::size_t>(l)];
      if (done != 0) return WalkEnd{at_left};  // cycle closed
      done = 1;
      edges.push_back({l, r, use_a});
      v = at_left ? r : l;
      at_left = !at_left;
      use_a = !use_a;
    }
  };

  const auto commit = [&](const std::vector<Edge>& edges, bool take_a) {
    for (const auto& e : edges) {
      if (e.from_a == take_a) out.match(e.l, e.r);
    }
  };

  // Paths first: start from every degree-1 vertex (covered by exactly one
  // matching within the symmetric difference). Each path is walked once —
  // from its other end the first edge is already marked done.
  const auto handle_path = [&](bool at_left, std::int32_t v, bool use_a) {
    std::vector<Edge> edges;
    const WalkEnd end = walk(at_left, v, use_a, edges);
    if (edges.empty()) return;
    // The start endpoint's incident edge is edges.front() (type use_a); the
    // final endpoint's is edges.back(). Take mb's edges iff some endpoint is
    // a right vertex whose incident edge comes from mb; the parity of
    // alternating paths makes a conflicting left-ma endpoint impossible.
    const bool start_needs_b = !at_left && !use_a;
    const bool end_needs_b = !end.at_left && !edges.back().from_a;
    const bool need_b = start_needs_b || end_needs_b;
    const bool start_needs_a = at_left && use_a;
    const bool end_needs_a = end.at_left && edges.back().from_a;
    if (need_b && (start_needs_a || end_needs_a)) {
      throw std::logic_error("mendelsohn_dulmage: conflicting path endpoints");
    }
    commit(edges, !need_b);
  };

  for (std::int32_t l = 0; l < nl; ++l) {
    const bool has_a = a_from_left(l) != kNone;
    const bool has_b = b_from_left(l) != kNone;
    if (has_a != has_b) handle_path(true, l, has_a);
  }
  for (std::int32_t r = 0; r < nr; ++r) {
    const bool has_a = a_from_right(r) != kNone && a_done[static_cast<std::size_t>(a_from_right(r))] == 0;
    const bool has_b = b_from_right(r) != kNone && b_done[static_cast<std::size_t>(b_from_right(r))] == 0;
    const bool raw_a = a_from_right(r) != kNone;
    const bool raw_b = b_from_right(r) != kNone;
    if (raw_a != raw_b) {
      if ((raw_a && has_a) || (raw_b && has_b)) handle_path(false, r, raw_a);
    }
  }

  // Whatever remains is cycles: both choices cover the same vertices; take ma.
  for (std::int32_t l = 0; l < nl; ++l) {
    if (a_from_left(l) != kNone && a_done[static_cast<std::size_t>(l)] == 0) {
      std::vector<Edge> edges;
      walk(true, l, true, edges);
      commit(edges, true);
    }
  }
  return out;
}

bool Matching::consistent_with(const graph::BipartiteGraph& g) const {
  if (g.n_left() != n_left() || g.n_right() != n_right()) return false;
  for (std::int32_t l = 0; l < n_left(); ++l) {
    const std::int32_t r = right_of(l);
    if (r == kNone) continue;
    bool found = false;
    for (const auto e : g.left_incident(l)) {
      if (g.edge_right(static_cast<std::size_t>(e)) == r) {
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  return true;
}

}  // namespace ncpm::matching
