#include "matching/two_regular.hpp"

#include <stdexcept>

#include "graph/path_decomposition.hpp"
#include "pram/list_ranking.hpp"

namespace ncpm::matching {

std::optional<std::vector<std::int32_t>> two_regular_perfect_matching(
    std::size_t n_vertices, std::span<const std::int32_t> eu, std::span<const std::int32_t> ev,
    std::span<const std::uint8_t> edge_alive, pram::NcCounters* counters) {
  pram::Workspace ws;
  return two_regular_perfect_matching(n_vertices, eu, ev, edge_alive, ws, counters);
}

std::optional<std::vector<std::int32_t>> two_regular_perfect_matching(
    std::size_t n_vertices, std::span<const std::int32_t> eu, std::span<const std::int32_t> ev,
    std::span<const std::uint8_t> edge_alive, pram::Workspace& ws, pram::NcCounters* counters) {
  const std::size_t m = eu.size();
  if (ev.size() != m || (!edge_alive.empty() && edge_alive.size() != m)) {
    throw std::invalid_argument("two_regular_perfect_matching: edge array size mismatch");
  }
  const auto alive = [&](std::size_t e) { return edge_alive.empty() || edge_alive[e] != 0; };
  pram::Executor& ex = ws.exec();
  const bool bad = ex.parallel_any(m, [&](std::size_t e) {
    if (!alive(e)) return false;
    return eu[e] < 0 || ev[e] < 0 || static_cast<std::size_t>(eu[e]) >= n_vertices ||
           static_cast<std::size_t>(ev[e]) >= n_vertices || eu[e] == ev[e];
  });
  if (bad) {
    throw std::invalid_argument("two_regular_perfect_matching: bad alive edge");
  }
  const std::size_t nh = 2 * m;

  // Degrees, two-slot incidence and successors for the touched vertices
  // only — a 2-regular graph never needs the full CSR, and the cycle
  // labelling below does its own ranking, so only the links stage runs.
  graph::AliveEdgePaths paths(n_vertices, m, ws);
  paths.rebuild_links(eu, ev, edge_alive, counters);
  const std::span<const std::int32_t> succ = paths.succ();

  // Dead or blocked half-edges are terminal. In a 2-regular graph no alive
  // traversal may terminate, which stands in for the degree check.
  const bool terminal = ex.parallel_any(nh, [&](std::size_t h) {
    return alive(h >> 1) && succ[h] == static_cast<std::int32_t>(h);
  });
  if (terminal) {
    throw std::invalid_argument("two_regular_perfect_matching: a vertex has degree != 2");
  }

  // Label every *directed* cycle with its minimum alive half-edge id.
  auto key = ws.take<std::int64_t>(nh);
  ex.parallel_for(nh, [&](std::size_t h) {
    key[h] = alive(h >> 1) ? static_cast<std::int64_t>(h)
                           : static_cast<std::int64_t>(nh);  // dead: +inf
  });
  pram::add_round(counters, nh);
  auto label = ws.take<std::int64_t>(nh);
  pram::window_min_into(succ, key.span(), nh, label.span(), ws, counters);

  // Break each directed cycle at its label and rank: rank[h] = dist(h -> root).
  auto broken = ws.take<std::int32_t>(nh);
  ex.parallel_for(nh, [&](std::size_t h) {
    const bool is_root = label[h] == static_cast<std::int64_t>(h);
    broken[h] = is_root ? static_cast<std::int32_t>(h) : succ[h];
  });
  pram::add_round(counters, nh);
  auto head = ws.take<std::int32_t>(nh);
  auto rank = ws.take<std::int64_t>(nh);
  auto reaches = ws.take<std::uint8_t>(nh);
  pram::list_rank_into(broken.span(), {head.span(), rank.span(), reaches.span()}, ws, counters);

  // Cycle lengths, published at each root.
  auto len_at = ws.take<std::int64_t>(nh, std::int64_t{0});
  ex.parallel_for(nh, [&](std::size_t h) {
    if (alive(h >> 1) && label[h] == static_cast<std::int64_t>(h)) {
      len_at[h] = rank[static_cast<std::size_t>(succ[h])] + 1;
    }
  });
  pram::add_round(counters, nh);

  const bool odd = ex.parallel_any(nh, [&](std::size_t h) {
    return alive(h >> 1) && label[h] == static_cast<std::int64_t>(h) && (len_at[h] & 1) != 0;
  });
  if (odd) return std::nullopt;

  // Of the two traversals of an undirected cycle only the one carrying the
  // smaller label selects edges; it picks those at even distance from the root.
  auto selected = ws.take<std::uint8_t>(m, std::uint8_t{0});
  ex.parallel_for(nh, [&](std::size_t h) {
    if (!alive(h >> 1)) return;
    const auto mine = label[h];
    const auto other = label[h ^ 1];
    if (mine >= other) return;
    const std::int64_t len = len_at[static_cast<std::size_t>(mine)];
    const std::int64_t d_from_root = (len - rank[h]) % len;
    if ((d_from_root & 1) == 0) selected[h >> 1] = 1;
  });
  pram::add_round(counters, nh);

  std::vector<std::int32_t> out;
  for (std::size_t e = 0; e < m; ++e) {
    if (selected[e] != 0) out.push_back(static_cast<std::int32_t>(e));
  }
  return out;
}

}  // namespace ncpm::matching
