#include "matching/two_regular.hpp"

#include <stdexcept>

#include "graph/path_decomposition.hpp"
#include "pram/list_ranking.hpp"
#include "pram/parallel.hpp"

namespace ncpm::matching {

std::optional<std::vector<std::int32_t>> two_regular_perfect_matching(
    std::size_t n_vertices, std::span<const std::int32_t> eu, std::span<const std::int32_t> ev,
    std::span<const std::uint8_t> edge_alive, pram::NcCounters* counters) {
  const graph::HalfEdgeStructure s(n_vertices, eu, ev, edge_alive, counters);
  const std::size_t nh = s.n_half_edges();

  // In a 2-regular graph no alive traversal may terminate.
  const bool terminal = pram::parallel_any(nh, [&](std::size_t h) {
    return s.edge_alive(h >> 1) && s.ranking().reaches_terminal[h] != 0;
  });
  if (terminal) {
    throw std::invalid_argument("two_regular_perfect_matching: a vertex has degree != 2");
  }

  // Label every *directed* cycle with its minimum alive half-edge id.
  std::vector<std::int64_t> key(nh);
  pram::parallel_for(nh, [&](std::size_t h) {
    key[h] = s.edge_alive(h >> 1) ? static_cast<std::int64_t>(h)
                                  : static_cast<std::int64_t>(nh);  // dead: +inf
  });
  pram::add_round(counters, nh);
  const auto label = pram::window_min(s.succ(), key, nh, counters);

  // Break each directed cycle at its label and rank: rank[h] = dist(h -> root).
  std::vector<std::int32_t> broken(nh);
  pram::parallel_for(nh, [&](std::size_t h) {
    const bool is_root = label[h] == static_cast<std::int64_t>(h);
    broken[h] = is_root ? static_cast<std::int32_t>(h) : s.succ()[h];
  });
  pram::add_round(counters, nh);
  const auto ranking = pram::list_rank(broken, counters);

  // Cycle lengths, published at each root.
  std::vector<std::int64_t> len_at(nh, 0);
  pram::parallel_for(nh, [&](std::size_t h) {
    if (s.edge_alive(h >> 1) && label[h] == static_cast<std::int64_t>(h)) {
      len_at[h] = ranking.rank[static_cast<std::size_t>(s.succ()[h])] + 1;
    }
  });
  pram::add_round(counters, nh);

  const bool odd = pram::parallel_any(nh, [&](std::size_t h) {
    return s.edge_alive(h >> 1) && label[h] == static_cast<std::int64_t>(h) &&
           (len_at[h] & 1) != 0;
  });
  if (odd) return std::nullopt;

  // Of the two traversals of an undirected cycle only the one carrying the
  // smaller label selects edges; it picks those at even distance from the root.
  std::vector<std::uint8_t> selected(s.n_edges(), 0);
  pram::parallel_for(nh, [&](std::size_t h) {
    if (!s.edge_alive(h >> 1)) return;
    const auto mine = label[h];
    const auto other = label[static_cast<std::size_t>(graph::HalfEdgeStructure::rev(
        static_cast<std::int32_t>(h)))];
    if (mine >= other) return;
    const std::int64_t len = len_at[static_cast<std::size_t>(mine)];
    const std::int64_t d_from_root = (len - ranking.rank[h]) % len;
    if ((d_from_root & 1) == 0) selected[h >> 1] = 1;
  });
  pram::add_round(counters, nh);

  std::vector<std::int32_t> out;
  for (std::size_t e = 0; e < s.n_edges(); ++e) {
    if (selected[e] != 0) out.push_back(static_cast<std::int32_t>(e));
  }
  return out;
}

}  // namespace ncpm::matching
