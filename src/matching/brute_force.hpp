#pragma once
// Exponential-time oracles for the test suite. Only sane for tiny graphs.

#include <cstddef>
#include <functional>
#include <vector>

#include "graph/bipartite_graph.hpp"
#include "matching/matching.hpp"

namespace ncpm::matching {

/// Maximum matching cardinality by exhaustive branching.
std::size_t brute_force_max_matching_size(const graph::BipartiteGraph& g);

/// Invoke `visit` on every matching of g (including the empty one), each
/// encoded as right_of_left with kNone for unmatched left vertices.
void for_each_matching(const graph::BipartiteGraph& g,
                       const std::function<void(const std::vector<std::int32_t>&)>& visit);

}  // namespace ncpm::matching
