#include "matching/brute_force.hpp"

namespace ncpm::matching {

namespace {

void enumerate(const graph::BipartiteGraph& g, std::int32_t l, std::vector<std::int32_t>& right_of,
               std::vector<std::uint8_t>& right_used,
               const std::function<void(const std::vector<std::int32_t>&)>& visit) {
  if (l == g.n_left()) {
    visit(right_of);
    return;
  }
  // Leave l unmatched.
  enumerate(g, l + 1, right_of, right_used, visit);
  for (const auto e : g.left_incident(l)) {
    const std::int32_t r = g.edge_right(static_cast<std::size_t>(e));
    if (right_used[static_cast<std::size_t>(r)] != 0) continue;
    right_used[static_cast<std::size_t>(r)] = 1;
    right_of[static_cast<std::size_t>(l)] = r;
    enumerate(g, l + 1, right_of, right_used, visit);
    right_of[static_cast<std::size_t>(l)] = kNone;
    right_used[static_cast<std::size_t>(r)] = 0;
  }
}

}  // namespace

void for_each_matching(const graph::BipartiteGraph& g,
                       const std::function<void(const std::vector<std::int32_t>&)>& visit) {
  std::vector<std::int32_t> right_of(static_cast<std::size_t>(g.n_left()), kNone);
  std::vector<std::uint8_t> right_used(static_cast<std::size_t>(g.n_right()), 0);
  enumerate(g, 0, right_of, right_used, visit);
}

std::size_t brute_force_max_matching_size(const graph::BipartiteGraph& g) {
  std::size_t best = 0;
  for_each_matching(g, [&](const std::vector<std::int32_t>& right_of) {
    std::size_t size = 0;
    for (const auto r : right_of) {
      if (r != kNone) ++size;
    }
    if (size > best) best = size;
  });
  return best;
}

}  // namespace ncpm::matching
