#include "matching/hopcroft_karp.hpp"

#include <deque>
#include <limits>
#include <stdexcept>
#include <vector>

namespace ncpm::matching {

namespace {

constexpr std::int32_t kInf = std::numeric_limits<std::int32_t>::max();

struct HkState {
  const graph::BipartiteGraph& g;
  Matching& m;
  std::vector<std::int32_t> dist;

  explicit HkState(const graph::BipartiteGraph& graph, Matching& matching)
      : g(graph), m(matching), dist(static_cast<std::size_t>(graph.n_left())) {}

  bool bfs() {
    std::deque<std::int32_t> queue;
    for (std::int32_t l = 0; l < g.n_left(); ++l) {
      if (!m.left_matched(l)) {
        dist[static_cast<std::size_t>(l)] = 0;
        queue.push_back(l);
      } else {
        dist[static_cast<std::size_t>(l)] = kInf;
      }
    }
    bool found_free_right = false;
    while (!queue.empty()) {
      const std::int32_t l = queue.front();
      queue.pop_front();
      for (const auto e : g.left_incident(l)) {
        const std::int32_t r = g.edge_right(static_cast<std::size_t>(e));
        const std::int32_t next_l = m.left_of(r);
        if (next_l == kNone) {
          found_free_right = true;
        } else if (dist[static_cast<std::size_t>(next_l)] == kInf) {
          dist[static_cast<std::size_t>(next_l)] = dist[static_cast<std::size_t>(l)] + 1;
          queue.push_back(next_l);
        }
      }
    }
    return found_free_right;
  }

  bool dfs(std::int32_t l) {
    for (const auto e : g.left_incident(l)) {
      const std::int32_t r = g.edge_right(static_cast<std::size_t>(e));
      const std::int32_t next_l = m.left_of(r);
      if (next_l == kNone ||
          (dist[static_cast<std::size_t>(next_l)] == dist[static_cast<std::size_t>(l)] + 1 &&
           dfs(next_l))) {
        // r is free here: either it was exposed, or the successful recursive
        // call re-matched next_l elsewhere and released r in the process.
        m.unmatch_left(l);
        m.match(l, r);
        return true;
      }
    }
    dist[static_cast<std::size_t>(l)] = kInf;
    return false;
  }
};

}  // namespace

Matching maximum_matching(const graph::BipartiteGraph& g, const std::optional<Matching>& initial) {
  Matching m = initial.value_or(Matching(g.n_left(), g.n_right()));
  if (initial && !m.consistent_with(g)) {
    throw std::invalid_argument("maximum_matching: initial matching not within graph");
  }
  HkState state(g, m);
  while (state.bfs()) {
    for (std::int32_t l = 0; l < g.n_left(); ++l) {
      if (!m.left_matched(l)) state.dfs(l);
    }
  }
  return m;
}

EouDecomposition eou_decomposition(const graph::BipartiteGraph& g, const Matching& maximum) {
  EouDecomposition d;
  d.left.assign(static_cast<std::size_t>(g.n_left()), EouLabel::Unreachable);
  d.right.assign(static_cast<std::size_t>(g.n_right()), EouLabel::Unreachable);

  // Alternating BFS from exposed left vertices: left at even distance, right
  // at odd. From exposed right vertices, symmetrically. With a maximum
  // matching the two searches can never touch the same vertex (that would
  // expose an augmenting path), so plain overwrites are safe.
  std::deque<std::int32_t> lq;
  for (std::int32_t l = 0; l < g.n_left(); ++l) {
    if (!maximum.left_matched(l)) {
      d.left[static_cast<std::size_t>(l)] = EouLabel::Even;
      lq.push_back(l);
    }
  }
  while (!lq.empty()) {
    const std::int32_t l = lq.front();
    lq.pop_front();
    for (const auto e : g.left_incident(l)) {
      const std::int32_t r = g.edge_right(static_cast<std::size_t>(e));
      if (d.right[static_cast<std::size_t>(r)] != EouLabel::Unreachable) continue;
      d.right[static_cast<std::size_t>(r)] = EouLabel::Odd;
      const std::int32_t back = maximum.left_of(r);
      if (back != kNone && d.left[static_cast<std::size_t>(back)] == EouLabel::Unreachable) {
        d.left[static_cast<std::size_t>(back)] = EouLabel::Even;
        lq.push_back(back);
      }
    }
  }

  std::deque<std::int32_t> rq;
  for (std::int32_t r = 0; r < g.n_right(); ++r) {
    if (!maximum.right_matched(r) && d.right[static_cast<std::size_t>(r)] == EouLabel::Unreachable) {
      d.right[static_cast<std::size_t>(r)] = EouLabel::Even;
      rq.push_back(r);
    }
  }
  while (!rq.empty()) {
    const std::int32_t r = rq.front();
    rq.pop_front();
    for (const auto e : g.right_incident(r)) {
      const std::int32_t l = g.edge_left(static_cast<std::size_t>(e));
      if (d.left[static_cast<std::size_t>(l)] != EouLabel::Unreachable) continue;
      d.left[static_cast<std::size_t>(l)] = EouLabel::Odd;
      const std::int32_t back = maximum.right_of(l);
      if (back != kNone && d.right[static_cast<std::size_t>(back)] == EouLabel::Unreachable) {
        d.right[static_cast<std::size_t>(back)] = EouLabel::Even;
        rq.push_back(back);
      }
    }
  }
  return d;
}

}  // namespace ncpm::matching
