#include "matching/euler_split.hpp"

#include <atomic>
#include <stdexcept>

#include "obs/profiler.hpp"
#include "pram/list_ranking.hpp"
#include "pram/scan.hpp"
#include "pram/workspace.hpp"

namespace ncpm::matching {

namespace {

/// Grain for the very cheap per-half-edge loops: a few instructions each, so
/// let every thread chew contiguous blocks instead of paying the scheduler
/// per element.
constexpr std::size_t kGrain = 2048;

/// One Euler split: among the alive edges (all vertices d-regular, d even),
/// keep exactly d/2 per vertex. Vertices live in a unified id space
/// (left l -> l, right r -> n_left + r). All scratch is leased from `ws`,
/// so the log2(d) cascade reuses one warm set of buffers.
void euler_halve(const graph::BipartiteGraph& g, std::span<std::uint8_t> alive,
                 pram::Workspace& ws, pram::NcCounters* counters) {
  obs::PhaseScope phase(ws.profiler(), obs::Phase::kEulerSplit);
  const std::size_t m = g.num_edges();
  const std::size_t n =
      static_cast<std::size_t>(g.n_left()) + static_cast<std::size_t>(g.n_right());
  const std::size_t nh = 2 * m;
  pram::Executor& ex = ws.exec();

  // Alive incidence lists per unified vertex.
  auto degree = ws.take<std::int64_t>(n, std::int64_t{0});
  ex.parallel_for(m, [&](std::size_t e) {
    if (alive[e] == 0) return;
    const auto u = static_cast<std::size_t>(g.edge_left(e));
    const auto v =
        static_cast<std::size_t>(g.n_left()) + static_cast<std::size_t>(g.edge_right(e));
    std::atomic_ref<std::int64_t>(degree[u]).fetch_add(1, std::memory_order_relaxed);
    std::atomic_ref<std::int64_t>(degree[v]).fetch_add(1, std::memory_order_relaxed);
  });
  pram::add_round(counters, m);

  auto offset = ws.take<std::int64_t>(n);
  const std::int64_t total =
      pram::exclusive_scan<std::int64_t>(degree.span(), offset.span(), ws, counters);
  auto incident = ws.take<std::int32_t>(static_cast<std::size_t>(total));
  auto slot_of_half = ws.take<std::int64_t>(nh, std::int64_t{-1});
  auto cursor = ws.take<std::int64_t>(n);
  ex.parallel_for_grain(n, kGrain, [&](std::size_t v) { cursor[v] = offset[v]; });
  pram::add_round(counters, n);
  ex.parallel_for(m, [&](std::size_t e) {
    if (alive[e] == 0) return;
    const auto u = static_cast<std::size_t>(g.edge_left(e));
    const auto v =
        static_cast<std::size_t>(g.n_left()) + static_cast<std::size_t>(g.edge_right(e));
    // Half-edge 2e enters v (travels left -> right); 2e+1 enters u.
    const auto pv =
        std::atomic_ref<std::int64_t>(cursor[v]).fetch_add(1, std::memory_order_relaxed);
    incident[static_cast<std::size_t>(pv)] = static_cast<std::int32_t>(e);
    slot_of_half[2 * e] = pv;
    const auto pu =
        std::atomic_ref<std::int64_t>(cursor[u]).fetch_add(1, std::memory_order_relaxed);
    incident[static_cast<std::size_t>(pu)] = static_cast<std::int32_t>(e);
    slot_of_half[2 * e + 1] = pu;
  });
  pram::add_round(counters, m);

  // Pair consecutive incident edges at every vertex: entering via the edge in
  // slot 2i leaves via slot 2i+1 and vice versa. This makes `succ` a
  // permutation of alive half-edges whose orbits are closed trails.
  auto succ = ws.take<std::int32_t>(nh);
  ex.parallel_for_grain(nh, kGrain, [&](std::size_t h) {
    if (alive[h >> 1] == 0) {
      succ[h] = static_cast<std::int32_t>(h);
      return;
    }
    const std::int64_t slot = slot_of_half[h];
    const std::int64_t buddy_slot = slot ^ 1;
    const std::int32_t buddy_edge = incident[static_cast<std::size_t>(buddy_slot)];
    // Leaving along buddy_edge from the vertex h entered: the new half-edge
    // "enters" buddy_edge's other endpoint.
    const bool entered_right = (h & 1U) == 0;  // h entered a right vertex
    // If we sit at a right vertex, we leave toward buddy's left endpoint,
    // i.e. the new half-edge is the one entering the left side: 2*buddy+1.
    succ[h] = entered_right ? 2 * buddy_edge + 1 : 2 * buddy_edge;
  });
  pram::add_round(counters, nh);

  // Label each directed trail, break at the label, rank, and keep the even
  // parity class. Trails in bipartite graphs have even length.
  auto key = ws.take<std::int64_t>(nh);
  ex.parallel_for_grain(nh, kGrain, [&](std::size_t h) {
    key[h] = alive[h >> 1] != 0 ? static_cast<std::int64_t>(h) : static_cast<std::int64_t>(nh);
  });
  pram::add_round(counters, nh);
  auto label = ws.take<std::int64_t>(nh);
  pram::window_min_into(succ.span(), key.span(), nh, label.span(), ws, counters);

  auto broken = ws.take<std::int32_t>(nh);
  ex.parallel_for_grain(nh, kGrain, [&](std::size_t h) {
    broken[h] = label[h] == static_cast<std::int64_t>(h) ? static_cast<std::int32_t>(h) : succ[h];
  });
  pram::add_round(counters, nh);
  auto head = ws.take<std::int32_t>(nh);
  auto rank = ws.take<std::int64_t>(nh);
  auto reaches = ws.take<std::uint8_t>(nh);
  pram::list_rank_into(broken.span(), {head.span(), rank.span(), reaches.span()}, ws, counters);

  auto len_at = ws.take<std::int64_t>(nh, std::int64_t{0});
  ex.parallel_for_grain(nh, kGrain, [&](std::size_t h) {
    if (alive[h >> 1] != 0 && label[h] == static_cast<std::int64_t>(h)) {
      len_at[h] = rank[static_cast<std::size_t>(succ[h])] + 1;
    }
  });
  pram::add_round(counters, nh);

  // Keep an edge iff the traversal carrying the smaller label sees it at even
  // distance from the root. Deciding from one traversal only keeps the
  // per-vertex counts exact (paired edges sit at adjacent trail positions).
  auto keep = ws.take<std::uint8_t>(m, std::uint8_t{0});
  ex.parallel_for_grain(nh, kGrain, [&](std::size_t h) {
    if (alive[h >> 1] == 0) return;
    const auto mine = label[h];
    const auto other = label[h ^ 1];
    if (mine >= other) return;
    const std::int64_t len = len_at[static_cast<std::size_t>(mine)];
    const std::int64_t d = (len - rank[h]) % len;
    if ((d & 1) == 0) keep[h >> 1] = 1;
  });
  pram::add_round(counters, nh);

  ex.parallel_for_grain(m, kGrain, [&](std::size_t e) {
    if (alive[e] != 0) alive[e] = keep[e];
  });
  pram::add_round(counters, m);
}

}  // namespace

Matching regular_bipartite_perfect_matching(const graph::BipartiteGraph& g,
                                            pram::NcCounters* counters) {
  if (g.n_left() != g.n_right()) {
    throw std::invalid_argument("regular_bipartite_perfect_matching: side sizes differ");
  }
  if (g.n_left() == 0) return Matching(0, 0);
  const std::size_t d = g.degree_left(0);
  for (std::int32_t l = 0; l < g.n_left(); ++l) {
    if (g.degree_left(l) != d) {
      throw std::invalid_argument("regular_bipartite_perfect_matching: not regular");
    }
  }
  for (std::int32_t r = 0; r < g.n_right(); ++r) {
    if (g.degree_right(r) != d) {
      throw std::invalid_argument("regular_bipartite_perfect_matching: not regular");
    }
  }
  if (d == 0 || (d & (d - 1)) != 0) {
    throw std::invalid_argument("regular_bipartite_perfect_matching: degree must be a power of two");
  }

  pram::Workspace ws;
  auto alive = ws.take<std::uint8_t>(g.num_edges(), std::uint8_t{1});
  for (std::size_t cur = d; cur > 1; cur /= 2) {
    euler_halve(g, alive.span(), ws, counters);
  }

  Matching m(g.n_left(), g.n_right());
  for (std::size_t e = 0; e < g.num_edges(); ++e) {
    if (alive[e] != 0) m.match(g.edge_left(e), g.edge_right(e));
  }
  return m;
}

}  // namespace ncpm::matching
