#pragma once
// Hopcroft–Karp maximum-cardinality bipartite matching, O(E sqrt(V)).
//
// Roles in this library:
//  * sequential baseline for the NC popular-matching pipeline benchmarks;
//  * the maximum-matching black box behind the ties machinery (Section V):
//    the rank-1 subgraph G1, the pruned reduced graph G'' and the
//    Mendelsohn–Dulmage combination all need maximum matchings;
//  * the reference cardinality the Theorem 11 reduction must reproduce.
//
// `maximum_matching` optionally continues from an initial matching (used to
// extend a maximum matching of G1 inside a larger graph G'').

#include <optional>

#include "graph/bipartite_graph.hpp"
#include "matching/matching.hpp"

namespace ncpm::matching {

/// Maximum matching of g. If `initial` is given it must be a valid matching
/// within g; augmentation starts from it (the result contains >= |initial|
/// edges but not necessarily the same ones).
Matching maximum_matching(const graph::BipartiteGraph& g,
                          const std::optional<Matching>& initial = std::nullopt);

/// Alternating-reachability decomposition w.r.t. a *maximum* matching
/// (Gallai–Edmonds / Dulmage–Mendelsohn flavour, as used by the ties
/// algorithm of Abraham et al.):
///   Even  — reachable from some exposed vertex by an even-length
///           alternating path (exposed vertices themselves are Even);
///   Odd   — reachable by an odd-length alternating path;
///   Unreachable — not reachable from any exposed vertex.
/// With a maximum matching no vertex is both Even and Odd, every Odd or
/// Unreachable vertex is matched in every maximum matching, and no maximum
/// matching uses an Odd–Odd or Odd–Unreachable edge.
enum class EouLabel : std::uint8_t { Even, Odd, Unreachable };

struct EouDecomposition {
  std::vector<EouLabel> left;
  std::vector<EouLabel> right;
};

EouDecomposition eou_decomposition(const graph::BipartiteGraph& g, const Matching& maximum);

}  // namespace ncpm::matching
