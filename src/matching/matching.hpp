#pragma once
// Bipartite matching container shared by every layer of the library.
//
// A Matching pairs left vertices (applicants / men) with right vertices
// (posts / women). Both directions are kept consistent; `set_pair_unchecked`
// exists for the NC algorithms that write vertex-disjoint pairs from
// parallel rounds and re-validate afterwards.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "graph/bipartite_graph.hpp"

namespace ncpm::matching {

using graph::kNone;

class Matching {
 public:
  Matching() = default;
  Matching(std::int32_t n_left, std::int32_t n_right);

  std::int32_t n_left() const noexcept { return static_cast<std::int32_t>(right_of_.size()); }
  std::int32_t n_right() const noexcept { return static_cast<std::int32_t>(left_of_.size()); }

  std::int32_t right_of(std::int32_t l) const { return right_of_[static_cast<std::size_t>(l)]; }
  std::int32_t left_of(std::int32_t r) const { return left_of_[static_cast<std::size_t>(r)]; }
  bool left_matched(std::int32_t l) const { return right_of(l) != kNone; }
  bool right_matched(std::int32_t r) const { return left_of(r) != kNone; }

  /// Number of matched pairs.
  std::size_t size() const noexcept { return size_; }

  /// Match two currently-free vertices; throws std::logic_error otherwise.
  void match(std::int32_t l, std::int32_t r);
  /// Remove l's pair if it has one.
  void unmatch_left(std::int32_t l);

  /// Write a pair without freeness checks or size maintenance. Intended for
  /// vertex-disjoint parallel writes; call `rebuild_inverse_and_size` after.
  void set_pair_unchecked(std::int32_t l, std::int32_t r) {
    right_of_[static_cast<std::size_t>(l)] = r;
  }
  /// Recompute left_of_ and size_ from right_of_; throws std::logic_error if
  /// two left vertices claim the same right vertex.
  void rebuild_inverse_and_size();

  /// True iff every matched pair is an edge of g (sides must be sized alike).
  bool consistent_with(const graph::BipartiteGraph& g) const;

  bool operator==(const Matching& other) const {
    return right_of_ == other.right_of_ && left_of_ == other.left_of_;
  }

 private:
  std::vector<std::int32_t> right_of_;
  std::vector<std::int32_t> left_of_;
  std::size_t size_ = 0;
};

/// Mendelsohn–Dulmage combination: returns a matching (within ma ∪ mb) that
/// covers every left vertex covered by `ma` AND every right vertex covered
/// by `mb`. Classic constructive proof over the components of ma ⊕ mb: keep
/// shared pairs; per alternating path take mb's edges iff a path endpoint is
/// a right vertex whose path edge is mb's (the conflicting path shape is
/// impossible by parity); cycles take ma's edges. Used by the ties
/// algorithm of Section V to combine an applicant-complete matching with a
/// maximum matching of the rank-1 subgraph.
Matching mendelsohn_dulmage(const Matching& ma, const Matching& mb);

}  // namespace ncpm::matching
