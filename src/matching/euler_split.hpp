#pragma once
// NC perfect matching in 2^k-regular bipartite graphs via Euler splitting
// (Lev–Pippenger–Valiant, the paper's reference [22]).
//
// Algorithm 2 itself only ever needs the 2-regular case (two_regular.hpp);
// this module ships the general construction the paper cites: repeatedly
// split a d-regular bipartite graph into two d/2-regular halves by pairing
// the incident edges at every vertex (which decomposes the edge set into
// closed trails), 2-colouring each trail by parity, and recursing on one
// colour class. After log2(d) splits the remaining 1-regular graph is a
// perfect matching. Each split costs O(log n) pointer-jumping rounds.

#include <optional>

#include "graph/bipartite_graph.hpp"
#include "matching/matching.hpp"
#include "pram/counters.hpp"

namespace ncpm::matching {

/// Perfect matching of a d-regular bipartite graph with d a power of two and
/// |left| == |right|. Throws std::invalid_argument if g is not d-regular for
/// a power-of-two d or the sides differ in size.
Matching regular_bipartite_perfect_matching(const graph::BipartiteGraph& g,
                                            pram::NcCounters* counters = nullptr);

}  // namespace ncpm::matching
