#pragma once
// Parallel prefix sums (scans) and stream compaction.
//
// Algorithm 4 of the paper compresses soft-deleted preference lists "using
// parallel prefix sum technique"; Algorithm 2 and the generators use
// compaction to rebuild alive-edge arrays each round. The implementation is
// the standard blocked two-pass scan: per-block partial sums, a scan over the
// block sums, then a fix-up pass. Depth is O(log n) in the PRAM abstraction
// (three barrier-synchronised rounds on p processors here).
//
// Every entry point runs its rounds on an Executor, following the pram
// layer's shared convention: a trailing `Executor& ex = default_executor()`
// parameter after the counters, or a Workspace overload that leases
// scratch from `ws` and runs on `ws`'s bound executor. Integer addition is
// exact, so results are bit-identical for every executor width even though
// the internal blocking follows the lane count.
//
// The per-block loops run through the pram/simd.hpp kernels (AVX2/SSE2/
// scalar, runtime-dispatched); every tier is bit-exact against scalar, so
// results are also identical across SIMD tiers and NCPM_SIMD settings.

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "pram/counters.hpp"
#include "pram/executor.hpp"
#include "pram/simd.hpp"
#include "pram/workspace.hpp"

namespace ncpm::pram {

namespace detail {

/// Blocked two-pass exclusive scan over caller-provided block sums
/// (`block_sum` must hold at least ex.lanes() elements).
template <typename T>
T exclusive_scan_blocked(std::span<const T> in, std::span<T> out, std::span<T> block_sum,
                         Executor& ex, NcCounters* counters) {
  const std::size_t n = in.size();
  const auto nlanes = static_cast<std::size_t>(ex.lanes());
  const std::size_t block = (n + nlanes - 1) / nlanes;
  const std::size_t nblocks = (n + block - 1) / block;

  ex.parallel_for(nblocks, [&](std::size_t b) {
    const std::size_t lo = b * block;
    const std::size_t hi = lo + block < n ? lo + block : n;
    block_sum[b] = simd::sum<T>(in.data() + lo, hi - lo);
  });
  add_round(counters, n);

  T total{};
  for (std::size_t b = 0; b < nblocks; ++b) {
    const T s = block_sum[b];
    block_sum[b] = total;
    total = total + s;
  }
  add_round(counters, nblocks);

  ex.parallel_for(nblocks, [&](std::size_t b) {
    const std::size_t lo = b * block;
    const std::size_t hi = lo + block < n ? lo + block : n;
    simd::exclusive_scan_carry<T>(in.data() + lo, out.data() + lo, hi - lo,
                                  block_sum[b]);
  });
  add_round(counters, n);
  return total;
}

}  // namespace detail

/// Exclusive prefix sum of `in` into `out` (same length) on `ex`. Returns
/// the total. `out[i] = in[0] + ... + in[i-1]`, `out[0] = 0`.
template <typename T>
T exclusive_scan(std::span<const T> in, std::span<T> out, NcCounters* counters = nullptr,
                 Executor& ex = default_executor()) {
  if (in.empty()) return T{};
  std::vector<T> block_sum(static_cast<std::size_t>(ex.lanes()), T{});
  return detail::exclusive_scan_blocked(in, out, std::span<T>(block_sum), ex, counters);
}

/// Exclusive scan on `ws`'s executor with the per-block partial sums leased
/// from `ws`: allocation-free once the workspace is warm.
template <typename T>
T exclusive_scan(std::span<const T> in, std::span<T> out, Workspace& ws,
                 NcCounters* counters = nullptr) {
  if (in.empty()) return T{};
  Executor& ex = ws.exec();
  auto block_sum = ws.take<T>(static_cast<std::size_t>(ex.lanes()));
  return detail::exclusive_scan_blocked(in, out, block_sum.span(), ex, counters);
}

/// Inclusive prefix sum on `ex`: `out[i] = in[0] + ... + in[i]`. Returns the total.
template <typename T>
T inclusive_scan(std::span<const T> in, std::span<T> out, NcCounters* counters = nullptr,
                 Executor& ex = default_executor()) {
  const std::size_t n = in.size();
  if (n == 0) return T{};
  const T total = exclusive_scan<T>(in, out, counters, ex);
  ex.parallel_for(n, [&](std::size_t i) { out[i] = out[i] + in[i]; });
  add_round(counters, n);
  return total;
}

/// Indices i in [0, n) with keep[i] != 0, in increasing order (stream compaction).
inline std::vector<std::uint32_t> compact_indices(std::span<const std::uint8_t> keep,
                                                  NcCounters* counters = nullptr,
                                                  Executor& ex = default_executor()) {
  const std::size_t n = keep.size();
  if (n == 0) return {};
  std::vector<std::uint32_t> flags(n), pos(n);
  const auto nlanes = static_cast<std::size_t>(ex.lanes());
  const std::size_t block = (n + nlanes - 1) / nlanes;
  const std::size_t nblocks = (n + block - 1) / block;
  ex.parallel_for(nblocks, [&](std::size_t b) {
    const std::size_t lo = b * block;
    const std::size_t hi = lo + block < n ? lo + block : n;
    simd::mask_to_flags(keep.data() + lo, flags.data() + lo, hi - lo);
  });
  add_round(counters, n);
  const std::uint32_t total =
      exclusive_scan<std::uint32_t>(flags, std::span<std::uint32_t>(pos), counters, ex);
  std::vector<std::uint32_t> out(total);
  ex.parallel_for(n, [&](std::size_t i) {
    if (keep[i] != 0) out[pos[i]] = static_cast<std::uint32_t>(i);
  });
  add_round(counters, n);
  return out;
}

/// Compact the elements of `values` whose flag is set, preserving order.
template <typename T>
std::vector<T> compact(std::span<const T> values, std::span<const std::uint8_t> keep,
                       NcCounters* counters = nullptr, Executor& ex = default_executor()) {
  const auto idx = compact_indices(keep, counters, ex);
  std::vector<T> out(idx.size());
  ex.parallel_for(idx.size(), [&](std::size_t i) { out[i] = values[idx[i]]; });
  add_round(counters, idx.size());
  return out;
}

}  // namespace ncpm::pram
