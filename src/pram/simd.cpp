#include "pram/simd.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>

#if defined(__x86_64__) || defined(_M_X64)
#define NCPM_SIMD_X86 1
#include <immintrin.h>
// AVX2 bodies carry a per-function target attribute so the translation
// unit compiles without -mavx2; the dispatcher only reaches them after a
// CPUID check (or when the caller's explicit tier was clamped to the
// detected one).
#define NCPM_TARGET_AVX2 __attribute__((target("avx2")))
#else
#define NCPM_SIMD_X86 0
#endif

namespace ncpm::pram {

// ---------------------------------------------------------------------------
// Tier selection

namespace {

int detect_tier_raw() noexcept {
#if NCPM_SIMD_X86
  if (__builtin_cpu_supports("avx2")) return static_cast<int>(SimdTier::kAvx2);
  return static_cast<int>(SimdTier::kSse2);  // baseline on x86-64
#else
  return static_cast<int>(SimdTier::kScalar);
#endif
}

std::atomic<int> g_forced{-1};      // -1 = no force_simd_tier() override
std::atomic<int> g_env_capped{-1};  // -1 = NCPM_SIMD not read yet

int env_capped_tier() noexcept {
  int cached = g_env_capped.load(std::memory_order_relaxed);
  if (cached >= 0) return cached;
  int tier = static_cast<int>(detected_simd_tier());
  if (const char* env = std::getenv("NCPM_SIMD")) {
    if (const auto parsed = parse_simd_tier(env)) {
      if (static_cast<int>(*parsed) < tier) tier = static_cast<int>(*parsed);
    } else {
      std::fprintf(stderr,
                   "ncpm: ignoring unknown NCPM_SIMD value '%s' "
                   "(expected avx2|sse2|scalar)\n",
                   env);
    }
  }
  // Benign race: every thread computes the same value.
  g_env_capped.store(tier, std::memory_order_relaxed);
  return tier;
}

SimdTier clamp_to_detected(SimdTier tier) noexcept {
  const int detected = static_cast<int>(detected_simd_tier());
  const int want = static_cast<int>(tier);
  return want > detected ? static_cast<SimdTier>(detected) : tier;
}

}  // namespace

SimdTier detected_simd_tier() noexcept {
  static const int tier = detect_tier_raw();
  return static_cast<SimdTier>(tier);
}

SimdTier active_simd_tier() noexcept {
  const int forced = g_forced.load(std::memory_order_relaxed);
  if (forced >= 0) return static_cast<SimdTier>(forced);
  return static_cast<SimdTier>(env_capped_tier());
}

void force_simd_tier(SimdTier tier) noexcept {
  g_forced.store(static_cast<int>(clamp_to_detected(tier)),
                 std::memory_order_relaxed);
}

void clear_forced_simd_tier() noexcept {
  g_forced.store(-1, std::memory_order_relaxed);
}

std::string_view simd_tier_name(SimdTier tier) noexcept {
  switch (tier) {
    case SimdTier::kAvx2:
      return "avx2";
    case SimdTier::kSse2:
      return "sse2";
    case SimdTier::kScalar:
      return "scalar";
  }
  return "scalar";
}

std::optional<SimdTier> parse_simd_tier(std::string_view name) noexcept {
  if (name == "avx2") return SimdTier::kAvx2;
  if (name == "sse2") return SimdTier::kSse2;
  if (name == "scalar") return SimdTier::kScalar;
  return std::nullopt;
}

namespace simd {
namespace {

// ---------------------------------------------------------------------------
// Scalar tier
//
// These are the reference semantics every other tier must reproduce
// bit-for-bit. Sums and scans run in the corresponding unsigned type so
// overflow wraps mod 2^w in every tier (and matches what the signed
// wrappers produce on this target).

std::uint32_t sum_u32_scalar(const std::uint32_t* x, std::size_t n) noexcept {
  std::uint32_t acc = 0;
  for (std::size_t i = 0; i < n; ++i) acc += x[i];
  return acc;
}

std::uint64_t sum_u64_scalar(const std::uint64_t* x, std::size_t n) noexcept {
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < n; ++i) acc += x[i];
  return acc;
}

std::uint32_t exscan_u32_scalar(const std::uint32_t* in, std::uint32_t* out,
                                std::size_t n, std::uint32_t carry) noexcept {
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t v = in[i];  // tolerate in == out aliasing
    out[i] = carry;
    carry += v;
  }
  return carry;
}

std::uint64_t exscan_u64_scalar(const std::uint64_t* in, std::uint64_t* out,
                                std::size_t n, std::uint64_t carry) noexcept {
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t v = in[i];
    out[i] = carry;
    carry += v;
  }
  return carry;
}

void mask_to_flags_scalar(const std::uint8_t* mask, std::uint32_t* flags,
                          std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) flags[i] = mask[i] != 0 ? 1u : 0u;
}

void window_min_round_scalar(const std::int64_t* val, const std::int32_t* jump,
                             std::int64_t* nval, std::int32_t* njump,
                             std::size_t lo, std::size_t hi) noexcept {
  for (std::size_t v = lo; v < hi; ++v) {
    const std::int32_t j = jump[v];
    const std::int64_t a = val[v];
    const std::int64_t b = val[static_cast<std::size_t>(j)];
    nval[v] = b < a ? b : a;  // std::min semantics: ties keep val[v]
    njump[v] = jump[static_cast<std::size_t>(j)];
  }
}

void list_rank_round_scalar(const std::int32_t* head, const std::int64_t* rank,
                            std::int32_t* nhead, std::int64_t* nrank,
                            std::size_t lo, std::size_t hi) noexcept {
  for (std::size_t v = lo; v < hi; ++v) {
    const std::int32_t h = head[v];
    nrank[v] = static_cast<std::int64_t>(
        static_cast<std::uint64_t>(rank[v]) +
        static_cast<std::uint64_t>(rank[static_cast<std::size_t>(h)]));
    nhead[v] = head[static_cast<std::size_t>(h)];
  }
}

#if NCPM_SIMD_X86

// ---------------------------------------------------------------------------
// SSE2 tier (baseline on x86-64, no target attribute needed)

std::uint32_t sum_u32_sse2(const std::uint32_t* x, std::size_t n) noexcept {
  __m128i acc = _mm_setzero_si128();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc = _mm_add_epi32(acc,
                        _mm_loadu_si128(reinterpret_cast<const __m128i*>(x + i)));
  }
  acc = _mm_add_epi32(acc, _mm_shuffle_epi32(acc, _MM_SHUFFLE(1, 0, 3, 2)));
  acc = _mm_add_epi32(acc, _mm_shuffle_epi32(acc, _MM_SHUFFLE(2, 3, 0, 1)));
  std::uint32_t r = static_cast<std::uint32_t>(_mm_cvtsi128_si32(acc));
  for (; i < n; ++i) r += x[i];
  return r;
}

std::uint64_t sum_u64_sse2(const std::uint64_t* x, std::size_t n) noexcept {
  __m128i acc = _mm_setzero_si128();
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    acc = _mm_add_epi64(acc,
                        _mm_loadu_si128(reinterpret_cast<const __m128i*>(x + i)));
  }
  std::uint64_t r =
      static_cast<std::uint64_t>(_mm_cvtsi128_si64(acc)) +
      static_cast<std::uint64_t>(_mm_cvtsi128_si64(_mm_unpackhi_epi64(acc, acc)));
  for (; i < n; ++i) r += x[i];
  return r;
}

std::uint32_t exscan_u32_sse2(const std::uint32_t* in, std::uint32_t* out,
                              std::size_t n, std::uint32_t carry) noexcept {
  std::size_t i = 0;
  __m128i vcarry = _mm_set1_epi32(static_cast<int>(carry));
  for (; i + 4 <= n; i += 4) {
    __m128i x = _mm_loadu_si128(reinterpret_cast<const __m128i*>(in + i));
    __m128i s = _mm_add_epi32(x, _mm_slli_si128(x, 4));
    s = _mm_add_epi32(s, _mm_slli_si128(s, 8));  // inclusive prefix of block
    __m128i excl = _mm_add_epi32(_mm_slli_si128(s, 4), vcarry);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i), excl);
    carry += static_cast<std::uint32_t>(
        _mm_cvtsi128_si32(_mm_shuffle_epi32(s, _MM_SHUFFLE(3, 3, 3, 3))));
    vcarry = _mm_set1_epi32(static_cast<int>(carry));
  }
  return exscan_u32_scalar(in + i, out + i, n - i, carry);
}

std::uint64_t exscan_u64_sse2(const std::uint64_t* in, std::uint64_t* out,
                              std::size_t n, std::uint64_t carry) noexcept {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    __m128i x = _mm_loadu_si128(reinterpret_cast<const __m128i*>(in + i));
    __m128i s = _mm_add_epi64(x, _mm_slli_si128(x, 8));  // [a, a+b]
    __m128i excl = _mm_add_epi64(_mm_slli_si128(s, 8),
                                 _mm_set1_epi64x(static_cast<long long>(carry)));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i), excl);
    carry += static_cast<std::uint64_t>(
        _mm_cvtsi128_si64(_mm_unpackhi_epi64(s, s)));
  }
  return exscan_u64_scalar(in + i, out + i, n - i, carry);
}

void mask_to_flags_sse2(const std::uint8_t* mask, std::uint32_t* flags,
                        std::size_t n) noexcept {
  const __m128i one = _mm_set1_epi8(1);
  const __m128i zero = _mm_setzero_si128();
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    __m128i b = _mm_loadu_si128(reinterpret_cast<const __m128i*>(mask + i));
    __m128i v = _mm_min_epu8(b, one);  // 0 stays 0, any nonzero byte -> 1
    __m128i lo16 = _mm_unpacklo_epi8(v, zero);
    __m128i hi16 = _mm_unpackhi_epi8(v, zero);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(flags + i),
                     _mm_unpacklo_epi16(lo16, zero));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(flags + i + 4),
                     _mm_unpackhi_epi16(lo16, zero));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(flags + i + 8),
                     _mm_unpacklo_epi16(hi16, zero));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(flags + i + 12),
                     _mm_unpackhi_epi16(hi16, zero));
  }
  mask_to_flags_scalar(mask + i, flags + i, n - i);
}

// SSE2 has no gathers; the doubling rounds get a 4x-unrolled scalar body
// (tier parity still holds — the per-element math is identical).

void window_min_round_sse2(const std::int64_t* val, const std::int32_t* jump,
                           std::int64_t* nval, std::int32_t* njump,
                           std::size_t lo, std::size_t hi) noexcept {
  std::size_t v = lo;
  for (; v + 4 <= hi; v += 4) {
    const std::size_t j0 = static_cast<std::size_t>(jump[v + 0]);
    const std::size_t j1 = static_cast<std::size_t>(jump[v + 1]);
    const std::size_t j2 = static_cast<std::size_t>(jump[v + 2]);
    const std::size_t j3 = static_cast<std::size_t>(jump[v + 3]);
    const std::int64_t b0 = val[j0], b1 = val[j1], b2 = val[j2], b3 = val[j3];
    nval[v + 0] = b0 < val[v + 0] ? b0 : val[v + 0];
    nval[v + 1] = b1 < val[v + 1] ? b1 : val[v + 1];
    nval[v + 2] = b2 < val[v + 2] ? b2 : val[v + 2];
    nval[v + 3] = b3 < val[v + 3] ? b3 : val[v + 3];
    njump[v + 0] = jump[j0];
    njump[v + 1] = jump[j1];
    njump[v + 2] = jump[j2];
    njump[v + 3] = jump[j3];
  }
  window_min_round_scalar(val, jump, nval, njump, v, hi);
}

void list_rank_round_sse2(const std::int32_t* head, const std::int64_t* rank,
                          std::int32_t* nhead, std::int64_t* nrank,
                          std::size_t lo, std::size_t hi) noexcept {
  std::size_t v = lo;
  for (; v + 4 <= hi; v += 4) {
    const std::size_t h0 = static_cast<std::size_t>(head[v + 0]);
    const std::size_t h1 = static_cast<std::size_t>(head[v + 1]);
    const std::size_t h2 = static_cast<std::size_t>(head[v + 2]);
    const std::size_t h3 = static_cast<std::size_t>(head[v + 3]);
    nrank[v + 0] = static_cast<std::int64_t>(
        static_cast<std::uint64_t>(rank[v + 0]) + static_cast<std::uint64_t>(rank[h0]));
    nrank[v + 1] = static_cast<std::int64_t>(
        static_cast<std::uint64_t>(rank[v + 1]) + static_cast<std::uint64_t>(rank[h1]));
    nrank[v + 2] = static_cast<std::int64_t>(
        static_cast<std::uint64_t>(rank[v + 2]) + static_cast<std::uint64_t>(rank[h2]));
    nrank[v + 3] = static_cast<std::int64_t>(
        static_cast<std::uint64_t>(rank[v + 3]) + static_cast<std::uint64_t>(rank[h3]));
    nhead[v + 0] = head[h0];
    nhead[v + 1] = head[h1];
    nhead[v + 2] = head[h2];
    nhead[v + 3] = head[h3];
  }
  list_rank_round_scalar(head, rank, nhead, nrank, v, hi);
}

// ---------------------------------------------------------------------------
// AVX2 tier

NCPM_TARGET_AVX2
std::uint32_t sum_u32_avx2(const std::uint32_t* x, std::size_t n) noexcept {
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    acc = _mm256_add_epi32(
        acc, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x + i)));
  }
  __m128i s = _mm_add_epi32(_mm256_castsi256_si128(acc),
                            _mm256_extracti128_si256(acc, 1));
  s = _mm_add_epi32(s, _mm_shuffle_epi32(s, _MM_SHUFFLE(1, 0, 3, 2)));
  s = _mm_add_epi32(s, _mm_shuffle_epi32(s, _MM_SHUFFLE(2, 3, 0, 1)));
  std::uint32_t r = static_cast<std::uint32_t>(_mm_cvtsi128_si32(s));
  for (; i < n; ++i) r += x[i];
  return r;
}

NCPM_TARGET_AVX2
std::uint64_t sum_u64_avx2(const std::uint64_t* x, std::size_t n) noexcept {
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc = _mm256_add_epi64(
        acc, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x + i)));
  }
  __m128i s = _mm_add_epi64(_mm256_castsi256_si128(acc),
                            _mm256_extracti128_si256(acc, 1));
  std::uint64_t r =
      static_cast<std::uint64_t>(_mm_cvtsi128_si64(s)) +
      static_cast<std::uint64_t>(_mm_cvtsi128_si64(_mm_unpackhi_epi64(s, s)));
  for (; i < n; ++i) r += x[i];
  return r;
}

NCPM_TARGET_AVX2
std::uint32_t exscan_u32_avx2(const std::uint32_t* in, std::uint32_t* out,
                              std::size_t n, std::uint32_t carry) noexcept {
  const __m256i zero = _mm256_setzero_si256();
  const __m256i bcast3 = _mm256_set1_epi32(3);
  const __m256i rot1 = _mm256_setr_epi32(7, 0, 1, 2, 3, 4, 5, 6);
  __m256i vcarry = _mm256_set1_epi32(static_cast<int>(carry));
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256i x = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(in + i));
    // In-lane inclusive prefix, then propagate the low lane's total.
    __m256i s = _mm256_add_epi32(x, _mm256_slli_si256(x, 4));
    s = _mm256_add_epi32(s, _mm256_slli_si256(s, 8));
    __m256i low_total = _mm256_permutevar8x32_epi32(s, bcast3);
    low_total = _mm256_blend_epi32(zero, low_total, 0xF0);
    s = _mm256_add_epi32(s, low_total);  // inclusive prefix of the block
    __m256i excl = _mm256_permutevar8x32_epi32(s, rot1);  // rotate right by 1
    excl = _mm256_blend_epi32(excl, zero, 0x01);          // element 0 -> 0
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i),
                        _mm256_add_epi32(excl, vcarry));
    carry += static_cast<std::uint32_t>(_mm256_extract_epi32(s, 7));
    vcarry = _mm256_set1_epi32(static_cast<int>(carry));
  }
  return exscan_u32_scalar(in + i, out + i, n - i, carry);
}

NCPM_TARGET_AVX2
std::uint64_t exscan_u64_avx2(const std::uint64_t* in, std::uint64_t* out,
                              std::size_t n, std::uint64_t carry) noexcept {
  const __m256i zero = _mm256_setzero_si256();
  __m256i vcarry = _mm256_set1_epi64x(static_cast<long long>(carry));
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i x = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(in + i));
    __m256i s = _mm256_add_epi64(x, _mm256_slli_si256(x, 8));  // [a,a+b | c,c+d]
    __m256i low_total = _mm256_permute4x64_epi64(s, _MM_SHUFFLE(1, 1, 1, 1));
    low_total = _mm256_blend_epi32(zero, low_total, 0xF0);
    s = _mm256_add_epi64(s, low_total);  // inclusive prefix of the block
    __m256i excl = _mm256_permute4x64_epi64(s, _MM_SHUFFLE(2, 1, 0, 0));
    excl = _mm256_blend_epi32(excl, zero, 0x03);  // element 0 -> 0
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i),
                        _mm256_add_epi64(excl, vcarry));
    carry += static_cast<std::uint64_t>(_mm256_extract_epi64(s, 3));
    vcarry = _mm256_set1_epi64x(static_cast<long long>(carry));
  }
  return exscan_u64_scalar(in + i, out + i, n - i, carry);
}

NCPM_TARGET_AVX2
void mask_to_flags_avx2(const std::uint8_t* mask, std::uint32_t* flags,
                        std::size_t n) noexcept {
  const __m128i one = _mm_set1_epi8(1);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    __m128i b = _mm_loadu_si128(reinterpret_cast<const __m128i*>(mask + i));
    __m128i v = _mm_min_epu8(b, one);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(flags + i),
                        _mm256_cvtepu8_epi32(v));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(flags + i + 8),
                        _mm256_cvtepu8_epi32(_mm_srli_si128(v, 8)));
  }
  mask_to_flags_scalar(mask + i, flags + i, n - i);
}

NCPM_TARGET_AVX2
void window_min_round_avx2(const std::int64_t* val, const std::int32_t* jump,
                           std::int64_t* nval, std::int32_t* njump,
                           std::size_t lo, std::size_t hi) noexcept {
  std::size_t v = lo;
  for (; v + 4 <= hi; v += 4) {
    __m128i j = _mm_loadu_si128(reinterpret_cast<const __m128i*>(jump + v));
    __m256i a = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(val + v));
    __m256i b = _mm256_i32gather_epi64(
        reinterpret_cast<const long long*>(val), j, 8);
    // min_epi64 needs AVX-512; emulate with cmpgt + blendv. Picking b only
    // when a > b reproduces std::min's tie-keeps-a behaviour exactly.
    __m256i gt = _mm256_cmpgt_epi64(a, b);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(nval + v),
                        _mm256_blendv_epi8(a, b, gt));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(njump + v),
                     _mm_i32gather_epi32(reinterpret_cast<const int*>(jump), j, 4));
  }
  window_min_round_scalar(val, jump, nval, njump, v, hi);
}

NCPM_TARGET_AVX2
void list_rank_round_avx2(const std::int32_t* head, const std::int64_t* rank,
                          std::int32_t* nhead, std::int64_t* nrank,
                          std::size_t lo, std::size_t hi) noexcept {
  std::size_t v = lo;
  for (; v + 4 <= hi; v += 4) {
    __m128i h = _mm_loadu_si128(reinterpret_cast<const __m128i*>(head + v));
    __m256i r = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(rank + v));
    __m256i rh = _mm256_i32gather_epi64(
        reinterpret_cast<const long long*>(rank), h, 8);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(nrank + v),
                        _mm256_add_epi64(r, rh));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(nhead + v),
                     _mm_i32gather_epi32(reinterpret_cast<const int*>(head), h, 4));
  }
  list_rank_round_scalar(head, rank, nhead, nrank, v, hi);
}

#endif  // NCPM_SIMD_X86

}  // namespace

// ---------------------------------------------------------------------------
// Dispatch
//
// Explicit tiers above what the CPU supports clamp down (parity, not
// speed, is the contract for a requested tier). On non-x86 everything is
// the scalar body.

#if NCPM_SIMD_X86
#define NCPM_DISPATCH(fn, ...)                   \
  switch (clamp_to_detected(tier)) {             \
    case SimdTier::kAvx2:                        \
      return fn##_avx2(__VA_ARGS__);             \
    case SimdTier::kSse2:                        \
      return fn##_sse2(__VA_ARGS__);             \
    case SimdTier::kScalar:                      \
      break;                                     \
  }                                              \
  return fn##_scalar(__VA_ARGS__)
#else
#define NCPM_DISPATCH(fn, ...) \
  (void)tier;                  \
  return fn##_scalar(__VA_ARGS__)
#endif

std::uint32_t sum_u32(SimdTier tier, const std::uint32_t* x, std::size_t n) noexcept {
  NCPM_DISPATCH(sum_u32, x, n);
}
std::uint64_t sum_u64(SimdTier tier, const std::uint64_t* x, std::size_t n) noexcept {
  NCPM_DISPATCH(sum_u64, x, n);
}
// Signed variants run the unsigned kernels on the same bits: int32/uint32
// (and int64/uint64) may alias, and wrap-around addition is bit-identical.
std::int32_t sum_i32(SimdTier tier, const std::int32_t* x, std::size_t n) noexcept {
  return static_cast<std::int32_t>(
      sum_u32(tier, reinterpret_cast<const std::uint32_t*>(x), n));
}
std::int64_t sum_i64(SimdTier tier, const std::int64_t* x, std::size_t n) noexcept {
  return static_cast<std::int64_t>(
      sum_u64(tier, reinterpret_cast<const std::uint64_t*>(x), n));
}

std::uint32_t exscan_u32(SimdTier tier, const std::uint32_t* in, std::uint32_t* out,
                         std::size_t n, std::uint32_t carry) noexcept {
  NCPM_DISPATCH(exscan_u32, in, out, n, carry);
}
std::uint64_t exscan_u64(SimdTier tier, const std::uint64_t* in, std::uint64_t* out,
                         std::size_t n, std::uint64_t carry) noexcept {
  NCPM_DISPATCH(exscan_u64, in, out, n, carry);
}
std::int32_t exscan_i32(SimdTier tier, const std::int32_t* in, std::int32_t* out,
                        std::size_t n, std::int32_t carry) noexcept {
  return static_cast<std::int32_t>(
      exscan_u32(tier, reinterpret_cast<const std::uint32_t*>(in),
                 reinterpret_cast<std::uint32_t*>(out), n,
                 static_cast<std::uint32_t>(carry)));
}
std::int64_t exscan_i64(SimdTier tier, const std::int64_t* in, std::int64_t* out,
                        std::size_t n, std::int64_t carry) noexcept {
  return static_cast<std::int64_t>(
      exscan_u64(tier, reinterpret_cast<const std::uint64_t*>(in),
                 reinterpret_cast<std::uint64_t*>(out), n,
                 static_cast<std::uint64_t>(carry)));
}

void mask_to_flags(SimdTier tier, const std::uint8_t* mask, std::uint32_t* flags,
                   std::size_t n) noexcept {
  NCPM_DISPATCH(mask_to_flags, mask, flags, n);
}

void window_min_round(SimdTier tier, const std::int64_t* val,
                      const std::int32_t* jump, std::int64_t* nval,
                      std::int32_t* njump, std::size_t lo, std::size_t hi) noexcept {
  NCPM_DISPATCH(window_min_round, val, jump, nval, njump, lo, hi);
}

void list_rank_round(SimdTier tier, const std::int32_t* head,
                     const std::int64_t* rank, std::int32_t* nhead,
                     std::int64_t* nrank, std::size_t lo, std::size_t hi) noexcept {
  NCPM_DISPATCH(list_rank_round, head, rank, nhead, nrank, lo, hi);
}

#undef NCPM_DISPATCH

}  // namespace simd
}  // namespace ncpm::pram
