#include "pram/executor.hpp"

#include <condition_variable>
#include <cstdlib>
#include <mutex>
#include <thread>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace ncpm::pram {

namespace {

/// The executor whose round the current thread is executing (lane 0 or a
/// pool worker). A nested primitive on the same executor runs inline.
thread_local const Executor* tl_running_on = nullptr;

/// Best-effort: pin the calling thread to one CPU. A failed setaffinity
/// (cpu id outside the cgroup mask, hotplugged away, ...) leaves the
/// thread floating, which is always correct — pinning is a performance
/// property, never a correctness one.
bool pin_current_thread(int cpu) noexcept {
#if defined(__linux__)
  if (cpu < 0) return false;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<unsigned>(cpu), &set);
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
#else
  (void)cpu;
  return false;
#endif
}

}  // namespace

std::vector<int> allowed_cpus() {
#if defined(__linux__)
  cpu_set_t set;
  if (sched_getaffinity(0, sizeof(set), &set) == 0) {
    std::vector<int> cpus;
    for (int c = 0; c < CPU_SETSIZE; ++c) {
      if (CPU_ISSET(static_cast<unsigned>(c), &set)) cpus.push_back(c);
    }
    if (!cpus.empty()) return cpus;
  }
#endif
  const unsigned hw = std::thread::hardware_concurrency();
  std::vector<int> cpus(hw == 0 ? 1 : hw);
  for (std::size_t c = 0; c < cpus.size(); ++c) cpus[c] = static_cast<int>(c);
  return cpus;
}

std::optional<std::vector<int>> parse_cpu_list(std::string_view text) {
  if (text.empty()) return std::nullopt;
  std::vector<int> cpus;
  std::size_t i = 0;
  const auto parse_num = [&](int& out) -> bool {
    if (i >= text.size() || text[i] < '0' || text[i] > '9') return false;
    long v = 0;
    while (i < text.size() && text[i] >= '0' && text[i] <= '9') {
      v = v * 10 + (text[i] - '0');
      if (v > 99999) return false;
      ++i;
    }
    out = static_cast<int>(v);
    return true;
  };
  for (;;) {
    int lo = 0;
    if (!parse_num(lo)) return std::nullopt;
    int hi = lo;
    if (i < text.size() && text[i] == '-') {
      ++i;
      if (!parse_num(hi) || hi < lo) return std::nullopt;
    }
    for (int c = lo; c <= hi; ++c) cpus.push_back(c);
    if (i == text.size()) break;
    if (text[i] != ',') return std::nullopt;
    ++i;  // past the comma; a trailing comma fails the next parse_num
  }
  return cpus;
}

struct Executor::Pool {
  std::mutex mu;
  std::condition_variable cv_start;
  std::condition_variable cv_done;
  TaskFn fn = nullptr;
  void* ctx = nullptr;
  int nlanes = 0;
  std::uint64_t epoch = 0;
  int unfinished = 0;
  bool stop = false;
  /// Serializes concurrent run_task callers (e.g. two engine workers
  /// sharing the default executor): one round at a time per pool.
  std::mutex dispatch_mu;
  std::vector<std::thread> threads;
};

Executor::Executor() : Executor(default_lanes()) {}

Executor::Executor(int lanes) : lanes_(lanes < 1 ? 1 : lanes), active_(lanes_) {
  start_pool();
}

Executor::Executor(const ExecutorConfig& config)
    : lanes_([&] {
        const int l = config.lanes > 0 ? config.lanes : default_lanes();
        return l < 1 ? 1 : l;
      }()),
      active_(lanes_),
      pin_(config.pin_lanes),
      cpus_(config.cpu_set),
      cpu_offset_(config.cpu_offset < 0 ? 0 : config.cpu_offset) {
#if !defined(__linux__)
  pin_ = false;
#endif
  if (pin_ && cpus_.empty()) cpus_ = allowed_cpus();
  if (cpus_.empty()) pin_ = false;
  if (!pin_) cpus_.clear();
  // Lane 0 is this (the future dispatching) thread: pin it now so the
  // executor's own allocations and first-touched pages land on its CPU.
  if (pin_) pin_current_thread(lane_cpu(0));
  start_pool();
}

Executor::~Executor() { stop_pool(); }

int Executor::lane_cpu(int lane) const noexcept {
  if (!pin_ || cpus_.empty() || lane < 0) return -1;
  const std::size_t idx =
      (static_cast<std::size_t>(cpu_offset_) + static_cast<std::size_t>(lane)) %
      cpus_.size();
  return cpus_[idx];
}

void Executor::start_pool() {
  if (lanes_ == 1) return;
  pool_ = std::make_unique<Pool>();
  Pool& p = *pool_;
  p.threads.reserve(static_cast<std::size_t>(lanes_ - 1));
  for (int idx = 0; idx < lanes_ - 1; ++idx) {
    p.threads.emplace_back([this, &p, idx] {
      const int lane = idx + 1;
      // New threads inherit the creator's mask; narrow to this lane's CPU
      // before any work so stacks and first-touched pages place correctly.
      if (pin_) pin_current_thread(lane_cpu(lane));
      std::uint64_t seen = 0;
      for (;;) {
        TaskFn fn = nullptr;
        void* ctx = nullptr;
        int nlanes = 0;
        {
          std::unique_lock<std::mutex> lock(p.mu);
          p.cv_start.wait(lock, [&] { return p.stop || p.epoch != seen; });
          if (p.stop) return;
          seen = p.epoch;
          fn = p.fn;
          ctx = p.ctx;
          nlanes = p.nlanes;
        }
        if (lane < nlanes) {
          tl_running_on = this;
          fn(ctx, lane, nlanes);
          tl_running_on = nullptr;
          std::lock_guard<std::mutex> lock(p.mu);
          if (--p.unfinished == 0) p.cv_done.notify_all();
        }
      }
    });
  }
}

void Executor::stop_pool() {
  if (!pool_) return;
  {
    std::lock_guard<std::mutex> lock(pool_->mu);
    pool_->stop = true;
  }
  pool_->cv_start.notify_all();
  for (auto& t : pool_->threads) t.join();
  pool_.reset();
}

void Executor::resize(int lanes) {
  const int clamped = lanes < 1 ? 1 : lanes;
  if (clamped == lanes_) {
    active_ = clamped;
    return;
  }
  stop_pool();
  lanes_ = clamped;
  active_ = clamped;
  start_pool();
}

int Executor::plan_lanes(std::size_t n) const noexcept {
  if (lanes_ == 1 || n <= 1) return 1;
  if (tl_running_on == this) return 1;  // nested on our own lanes: run inline
  const int cap = active_;
  return static_cast<std::size_t>(cap) < n ? cap : static_cast<int>(n);
}

void Executor::run_task(int nlanes, TaskFn fn, void* ctx) {
  Pool& p = *pool_;
  std::lock_guard<std::mutex> dispatch(p.dispatch_mu);
  {
    std::lock_guard<std::mutex> lock(p.mu);
    p.fn = fn;
    p.ctx = ctx;
    p.nlanes = nlanes;
    p.unfinished = nlanes - 1;
    ++p.epoch;
  }
  p.cv_start.notify_all();
  const Executor* const prev = tl_running_on;
  tl_running_on = this;
  // noexcept: a throwing body must terminate (as it does on worker lanes via
  // std::thread) — unwinding here would destroy the ctx closure while other
  // lanes still execute it and corrupt the barrier count.
  [&]() noexcept { fn(ctx, 0, nlanes); }();
  tl_running_on = prev;
  std::unique_lock<std::mutex> lock(p.mu);
  p.cv_done.wait(lock, [&] { return p.unfinished == 0; });
}

int default_lanes() noexcept {
  static const int lanes = [] {
    if (const char* env = std::getenv("NCPM_LANES")) {
      const int parsed = std::atoi(env);
      if (parsed >= 1) return parsed;
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
  }();
  return lanes;
}

Executor& default_executor() {
  static Executor shared(default_lanes());
  return shared;
}

void set_default_lanes(int lanes) { default_executor().resize(lanes); }

}  // namespace ncpm::pram
