#pragma once
// NC-depth instrumentation.
//
// Each algorithm in this library that claims a polylogarithmic depth bound
// accepts an optional `NcCounters*`. It adds one `round` per
// barrier-synchronised parallel step of the loop whose iteration count the
// paper bounds (e.g. the while-loop of Algorithm 2, pointer-jumping
// doublings, connected-components hook/shortcut iterations, transitive-
// closure squarings) and accumulates total element operations in `work`.
// Benchmarks read these counters to validate the paper's depth claims
// independently of wall-clock time.

#include <cstdint>
#include <string>

namespace ncpm::pram {

struct NcCounters {
  std::uint64_t rounds = 0;  ///< synchronous parallel rounds of the outer NC loop
  std::uint64_t work = 0;    ///< total element operations across all rounds

  void reset() noexcept { rounds = 0; work = 0; }
};

/// Record one parallel round touching `w` elements. No-op when `c` is null.
inline void add_round(NcCounters* c, std::uint64_t w = 0) noexcept {
  if (c != nullptr) {
    ++c->rounds;
    c->work += w;
  }
}

/// Record extra work inside the current round. No-op when `c` is null.
inline void add_work(NcCounters* c, std::uint64_t w) noexcept {
  if (c != nullptr) c->work += w;
}

/// Merge child-phase counters into a parent (rounds add: phases run back to back).
inline void merge_into(NcCounters* parent, const NcCounters& child) noexcept {
  if (parent != nullptr) {
    parent->rounds += child.rounds;
    parent->work += child.work;
  }
}

/// Human-readable one-line summary, e.g. "rounds=12 work=48231".
std::string to_string(const NcCounters& c);

}  // namespace ncpm::pram
