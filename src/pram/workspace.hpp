#pragma once
// Reusable scratch arenas for the round-synchronous algorithms.
//
// Every round-structured algorithm in this library (Algorithm 2's while
// loop, the Euler-split cascade, pointer-jumping passes, connected
// components) needs the same families of scratch buffers over and over:
// successor arrays, rank arrays, CSR offsets, flag and position arrays.
// Allocating them anew each round makes the hot loop pay the allocator
// instead of the hardware. A Workspace owns typed pools of buffers;
// `take<T>(n)` leases one — growing it only when no pooled buffer is big
// enough — and the lease hands the storage back on destruction. In steady
// state, with capacities warmed up by the first round, taking and returning
// buffers performs no heap allocation; `heap_allocations()` makes that
// observable to tests and benchmarks.
//
// Leases must not outlive the workspace they came from. Buffer contents
// start unspecified (stale data from an earlier lease) unless the fill
// overload is used.
//
// A Workspace also carries the pram::Executor its algorithms run their
// parallel rounds on: the pipeline threads one `Workspace&` end to end, so
// binding the executor here makes intra-solve parallelism a per-call
// property with no extra plumbing. The default constructor binds the
// shared default executor; engines and tests bind their own.
//
// Placement: pool storage allocates through CacheAlignedAllocator, so every
// leased buffer starts on a 64-byte boundary and tiled SIMD kernels never
// split a cache line at a lane's block seam. When the bound executor pins
// its lanes, the `take(n, fill)` overload (and `prefault`) doubles as
// first-touch placement: the fill round writes each lane's block from the
// lane that owns it under the static schedule, so the backing pages fault
// on — and stay local to — the CPU that will process them.

#include <cstddef>
#include <cstdint>
#include <span>
#include <tuple>
#include <utility>
#include <vector>

#include "pram/executor.hpp"
#include "pram/simd.hpp"

namespace ncpm::pram {

class Workspace;

namespace detail {
template <typename T>
void workspace_give_back(Workspace* ws, AlignedVector<T>&& buf);
}  // namespace detail

/// RAII lease of a scratch buffer from a Workspace. Move-only.
template <typename T>
class WsBuffer {
 public:
  WsBuffer() = default;
  WsBuffer(WsBuffer&& other) noexcept
      : ws_(std::exchange(other.ws_, nullptr)), buf_(std::move(other.buf_)) {}
  WsBuffer& operator=(WsBuffer&& other) noexcept {
    if (this != &other) {
      release();
      ws_ = std::exchange(other.ws_, nullptr);
      buf_ = std::move(other.buf_);
    }
    return *this;
  }
  WsBuffer(const WsBuffer&) = delete;
  WsBuffer& operator=(const WsBuffer&) = delete;
  ~WsBuffer() { release(); }

  std::span<T> span() noexcept { return buf_; }
  std::span<const T> span() const noexcept { return buf_; }
  T* data() noexcept { return buf_.data(); }
  std::size_t size() const noexcept { return buf_.size(); }
  T& operator[](std::size_t i) { return buf_[i]; }
  const T& operator[](std::size_t i) const { return buf_[i]; }

 private:
  friend class Workspace;
  WsBuffer(Workspace* ws, AlignedVector<T>&& buf) : ws_(ws), buf_(std::move(buf)) {}
  void release() {
    if (ws_ != nullptr) {
      detail::workspace_give_back<T>(ws_, std::move(buf_));
      ws_ = nullptr;
    }
  }

  Workspace* ws_ = nullptr;
  AlignedVector<T> buf_;
};

class Workspace {
 public:
  /// Bound to the shared default executor.
  Workspace() : Workspace(default_executor()) {}
  /// Bound to `ex`: every algorithm threading this workspace runs its
  /// parallel rounds on `ex`. The executor must outlive the workspace.
  explicit Workspace(Executor& ex) : ex_(&ex) {}
  Workspace(const Workspace&) = delete;
  Workspace& operator=(const Workspace&) = delete;

  /// The executor this workspace's algorithms run on.
  Executor& exec() const noexcept { return *ex_; }

  /// The phase accumulator attached to the bound executor, or nullptr.
  /// Solver layers holding only a Workspace& open their obs::PhaseScope
  /// timers through this forwarder.
  obs::PhaseAccum* profiler() const noexcept { return ex_->profiler(); }
  /// Forwards to Executor::attach_profiler on the bound executor.
  void attach_profiler(obs::PhaseAccum* accum) noexcept {
    ex_->attach_profiler(accum);
  }

  /// Lease a buffer of `n` elements with unspecified contents. Prefers the
  /// smallest pooled buffer whose capacity already fits; allocates (and
  /// counts it) only when none does.
  template <typename T>
  WsBuffer<T> take(std::size_t n) {
    auto& p = pool<T>();
    AlignedVector<T> buf;
    if (!p.empty()) {
      // Best fit: smallest capacity >= n, else the largest available (it
      // will grow the least).
      std::size_t best = 0;
      for (std::size_t i = 1; i < p.size(); ++i) {
        const bool best_fits = p[best].capacity() >= n;
        const bool i_fits = p[i].capacity() >= n;
        if ((i_fits && (!best_fits || p[i].capacity() < p[best].capacity())) ||
            (!i_fits && !best_fits && p[i].capacity() > p[best].capacity())) {
          best = i;
        }
      }
      buf = std::move(p[best]);
      p[best] = std::move(p.back());
      p.pop_back();
    }
    const std::size_t cap_before = buf.capacity();
    buf.resize(n);
    if (buf.capacity() != cap_before) ++allocs_;
    return WsBuffer<T>(this, std::move(buf));
  }

  /// Lease a buffer of `n` elements, every element set to `fill` (one
  /// parallel round, not counted against any NcCounters).
  template <typename T>
  WsBuffer<T> take(std::size_t n, T fill) {
    WsBuffer<T> out = take<T>(n);
    T* const data = out.data();
    ex_->parallel_for(n, [&](std::size_t i) { data[i] = fill; });
    return out;
  }

  /// Warm and place one pool buffer of `n` elements: lease it, zero-fill
  /// in a parallel round (each lane first-faults the pages of the block it
  /// will later own under the static schedule — on a pinned executor that
  /// is first-touch NUMA placement), and return it to the pool.
  template <typename T>
  void prefault(std::size_t n) {
    take<T>(n, T{});
  }

  /// Number of heap growths this workspace has performed (buffer and pool
  /// bookkeeping). Flat between two points in time == the region between
  /// them ran allocation-free with respect to this workspace.
  std::uint64_t heap_allocations() const noexcept { return allocs_; }

 private:
  template <typename T>
  friend void detail::workspace_give_back(Workspace* ws, AlignedVector<T>&& buf);

  template <typename T>
  std::vector<AlignedVector<T>>& pool() {
    return std::get<std::vector<AlignedVector<T>>>(pools_);
  }

  template <typename T>
  void give_back(AlignedVector<T>&& buf) {
    auto& p = pool<T>();
    if (p.size() == p.capacity()) ++allocs_;  // the push below grows the pool
    p.push_back(std::move(buf));
  }

  Executor* ex_ = nullptr;
  std::uint64_t allocs_ = 0;
  std::tuple<std::vector<AlignedVector<std::int32_t>>, std::vector<AlignedVector<std::int64_t>>,
             std::vector<AlignedVector<std::uint8_t>>, std::vector<AlignedVector<std::uint32_t>>,
             std::vector<AlignedVector<std::uint64_t>>>
      pools_;
};

namespace detail {
template <typename T>
void workspace_give_back(Workspace* ws, AlignedVector<T>&& buf) {
  ws->give_back<T>(std::move(buf));
}
}  // namespace detail

}  // namespace ncpm::pram
