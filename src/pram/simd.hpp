#pragma once
// Runtime-dispatched SIMD substrate for the round kernels.
//
// PR 2 made the per-round work proportional to the surviving edges; the
// remaining constant factor is memory layout and instruction throughput.
// This header is the seam between the two: every word/element-level hot
// loop in the tree (GF(2) row ops in linalg/, blocked scans and doubling
// rounds here in pram/) funnels through a kernel that exists in up to
// three tiers — AVX2, SSE2 and portable scalar — selected once at runtime.
//
// Tier selection:
//   * `detected_simd_tier()` probes the CPU once (CPUID via
//     __builtin_cpu_supports on x86-64; scalar elsewhere).
//   * `NCPM_SIMD=avx2|sse2|scalar` caps the tier from the environment
//     (read once, clamped to what the CPU supports; junk values warn once
//     on stderr and are ignored).
//   * `force_simd_tier()` / `clear_forced_simd_tier()` override both at
//     runtime — the dispatch-parity tests and the A/B benches sweep tiers
//     with it. The active tier is one relaxed atomic load on the hot path.
//
// Contract: every tier of every kernel is BIT-EXACT against the scalar
// tier — the kernels only reorder exact integer operations (wrap-around
// addition is associative and commutative mod 2^w; XOR/OR/AND/min/popcount
// are exact), never floating point. tests/pram/simd_dispatch_test.cpp
// enforces this per tier on adversarial lengths, and the oracle grids
// sweep tiers end-to-end. Vector bodies use unaligned loads and hand the
// tail (< one vector) to the scalar loop, so no kernel ever reads past
// its spans (the ASan CI job gates this).
//
// Every kernel has two forms: `kernel(args...)` runs on the active tier;
// `kernel(tier, args...)` runs an explicit tier (tests, benches). Tiers a
// build or CPU lacks silently fall back to scalar — parity, not speed, is
// the guarantee for an explicitly requested tier.

#include <cstddef>
#include <cstdint>
#include <new>
#include <optional>
#include <string_view>
#include <type_traits>
#include <vector>

namespace ncpm::pram {

enum class SimdTier : std::uint8_t {
  kScalar = 0,
  kSse2 = 1,
  kAvx2 = 2,
};

/// Best tier this CPU supports (probed once, cached).
SimdTier detected_simd_tier() noexcept;

/// The tier kernels dispatch to: min(detected, NCPM_SIMD cap, forced tier).
SimdTier active_simd_tier() noexcept;

/// Pin the active tier (clamped to the detected tier) until cleared.
/// Takes effect for subsequent kernel calls; do not flip it concurrently
/// with kernels in flight if the A/B attribution matters.
void force_simd_tier(SimdTier tier) noexcept;
void clear_forced_simd_tier() noexcept;

std::string_view simd_tier_name(SimdTier tier) noexcept;
std::optional<SimdTier> parse_simd_tier(std::string_view name) noexcept;

// ---------------------------------------------------------------------------
// Cache-line-aligned scratch
//
// Tiled kernels want their spans to start on a cache-line boundary so a
// vector never straddles two lines (and two pinned lanes never share a
// line at a block seam). Workspace pools allocate through this allocator,
// so every leased buffer is 64-byte aligned.

inline constexpr std::size_t kCacheLineBytes = 64;

template <typename T>
struct CacheAlignedAllocator {
  using value_type = T;

  CacheAlignedAllocator() noexcept = default;
  template <typename U>
  CacheAlignedAllocator(const CacheAlignedAllocator<U>&) noexcept {}  // NOLINT

  T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t{kCacheLineBytes}));
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t{kCacheLineBytes});
  }

  template <typename U>
  bool operator==(const CacheAlignedAllocator<U>&) const noexcept {
    return true;
  }
};

/// std::vector whose storage starts on a cache-line boundary.
template <typename T>
using AlignedVector = std::vector<T, CacheAlignedAllocator<T>>;

namespace simd {

// ---------------------------------------------------------------------------
// Blocked-scan kernels (the substrate under pram/scan.hpp)
//
// `sum`: fold a block. `exclusive_scan_carry`: out[i] = carry + in[0] +
// ... + in[i-1] over one block; returns carry + sum(block) — exactly the
// fix-up pass of the blocked two-pass scan, so the whole scan is these
// two kernels plus a serial pass over the per-block sums.

std::int32_t sum_i32(SimdTier tier, const std::int32_t* x, std::size_t n) noexcept;
std::uint32_t sum_u32(SimdTier tier, const std::uint32_t* x, std::size_t n) noexcept;
std::int64_t sum_i64(SimdTier tier, const std::int64_t* x, std::size_t n) noexcept;
std::uint64_t sum_u64(SimdTier tier, const std::uint64_t* x, std::size_t n) noexcept;

std::int32_t exscan_i32(SimdTier tier, const std::int32_t* in, std::int32_t* out,
                        std::size_t n, std::int32_t carry) noexcept;
std::uint32_t exscan_u32(SimdTier tier, const std::uint32_t* in, std::uint32_t* out,
                         std::size_t n, std::uint32_t carry) noexcept;
std::int64_t exscan_i64(SimdTier tier, const std::int64_t* in, std::int64_t* out,
                        std::size_t n, std::int64_t carry) noexcept;
std::uint64_t exscan_u64(SimdTier tier, const std::uint64_t* in, std::uint64_t* out,
                         std::size_t n, std::uint64_t carry) noexcept;

/// flags[i] = mask[i] != 0 ? 1 : 0, widened to u32 (the compaction
/// front-half: byte mask -> scan-ready flag array).
void mask_to_flags(SimdTier tier, const std::uint8_t* mask, std::uint32_t* flags,
                   std::size_t n) noexcept;
inline void mask_to_flags(const std::uint8_t* mask, std::uint32_t* flags,
                          std::size_t n) noexcept {
  mask_to_flags(active_simd_tier(), mask, flags, n);
}

// ---------------------------------------------------------------------------
// Doubling-round kernels (pointer jumping)
//
// One round over v in [lo, hi); the index arrays (`jump` / `head`) may
// point anywhere in the full array, so gathers range beyond [lo, hi).

/// nval[v] = min(val[v], val[jump[v]]); njump[v] = jump[jump[v]].
void window_min_round(SimdTier tier, const std::int64_t* val, const std::int32_t* jump,
                      std::int64_t* nval, std::int32_t* njump, std::size_t lo,
                      std::size_t hi) noexcept;
inline void window_min_round(const std::int64_t* val, const std::int32_t* jump,
                             std::int64_t* nval, std::int32_t* njump, std::size_t lo,
                             std::size_t hi) noexcept {
  window_min_round(active_simd_tier(), val, jump, nval, njump, lo, hi);
}

/// nrank[v] = rank[v] + rank[head[v]]; nhead[v] = head[head[v]].
void list_rank_round(SimdTier tier, const std::int32_t* head, const std::int64_t* rank,
                     std::int32_t* nhead, std::int64_t* nrank, std::size_t lo,
                     std::size_t hi) noexcept;
inline void list_rank_round(const std::int32_t* head, const std::int64_t* rank,
                            std::int32_t* nhead, std::int64_t* nrank, std::size_t lo,
                            std::size_t hi) noexcept {
  list_rank_round(active_simd_tier(), head, rank, nhead, nrank, lo, hi);
}

// ---------------------------------------------------------------------------
// Typed dispatch for the templated scan entry points

template <typename T>
inline constexpr bool has_simd_scan_kernel =
    std::is_same_v<T, std::int32_t> || std::is_same_v<T, std::uint32_t> ||
    std::is_same_v<T, std::int64_t> || std::is_same_v<T, std::uint64_t>;

/// Block fold on an explicit tier; scalar left-fold for types without a
/// typed kernel (exact regardless: integer addition wraps consistently).
template <typename T>
T sum(SimdTier tier, const T* x, std::size_t n) noexcept {
  if constexpr (std::is_same_v<T, std::int32_t>) {
    return sum_i32(tier, x, n);
  } else if constexpr (std::is_same_v<T, std::uint32_t>) {
    return sum_u32(tier, x, n);
  } else if constexpr (std::is_same_v<T, std::int64_t>) {
    return sum_i64(tier, x, n);
  } else if constexpr (std::is_same_v<T, std::uint64_t>) {
    return sum_u64(tier, x, n);
  } else {
    T acc{};
    for (std::size_t i = 0; i < n; ++i) acc = acc + x[i];
    return acc;
  }
}
template <typename T>
T sum(const T* x, std::size_t n) noexcept {
  return sum<T>(active_simd_tier(), x, n);
}

template <typename T>
T exclusive_scan_carry(SimdTier tier, const T* in, T* out, std::size_t n,
                       T carry) noexcept {
  if constexpr (std::is_same_v<T, std::int32_t>) {
    return exscan_i32(tier, in, out, n, carry);
  } else if constexpr (std::is_same_v<T, std::uint32_t>) {
    return exscan_u32(tier, in, out, n, carry);
  } else if constexpr (std::is_same_v<T, std::int64_t>) {
    return exscan_i64(tier, in, out, n, carry);
  } else if constexpr (std::is_same_v<T, std::uint64_t>) {
    return exscan_u64(tier, in, out, n, carry);
  } else {
    T acc = carry;
    for (std::size_t i = 0; i < n; ++i) {
      const T v = in[i];
      out[i] = acc;
      acc = acc + v;
    }
    return acc;
  }
}
template <typename T>
T exclusive_scan_carry(const T* in, T* out, std::size_t n, T carry) noexcept {
  return exclusive_scan_carry<T>(active_simd_tier(), in, out, n, carry);
}

}  // namespace simd
}  // namespace ncpm::pram
