#include "pram/counters.hpp"

namespace ncpm::pram {

std::string to_string(const NcCounters& c) {
  return "rounds=" + std::to_string(c.rounds) + " work=" + std::to_string(c.work);
}

}  // namespace ncpm::pram
