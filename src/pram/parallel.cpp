#include "pram/parallel.hpp"

// parallel.hpp is header-only; this translation unit exists so the substrate
// has a stable object file to anchor the library target and any future
// non-template runtime configuration.

namespace ncpm::pram {}
