#include "pram/parallel.hpp"

// parallel.hpp is header-only (thin forwarding onto the default Executor);
// this translation unit exists so the substrate keeps a stable object file
// anchoring the library target.

namespace ncpm::pram {}
