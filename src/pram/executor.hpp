#pragma once
// Executor: the round-synchronous PRAM substrate as an explicit object.
//
// The paper's algorithms are stated for CREW/CRCW PRAMs with a polynomial
// number of processors. We simulate that model with a persistent pool of
// hardware threads: one `parallel_for` call is one *synchronous parallel
// round* (all iterations independent, implicit barrier at the end). NC
// depth claims are validated by counting rounds of the algorithms' outer
// loops (see counters.hpp), not by wall-clock alone.
//
// Unlike the earlier OpenMP substrate, parallelism here is a *per-call*
// property, not process-global state: every layer of the pipeline runs its
// rounds on the Executor carried by its pram::Workspace (or passed
// explicitly), so independent solves can run concurrently, each with its
// own lane budget — the engine composes batch concurrency (workers) with
// intra-solve parallelism (lanes per worker) under one hardware budget.
//
// Determinism: results of every primitive are independent of the executor
// width. `parallel_for` bodies are independent by contract (EREW/CREW
// discipline; concurrent writes only through atomics, mirroring CRCW where
// an algorithm needs it); `parallel_reduce` requires an associative AND
// commutative `combine` (checked with a debug assertion on sampled
// elements), because lane partials are formed over width-dependent index
// blocks before being combined in lane order.
//
// Re-entrancy: calling a parallel primitive from inside one of the same
// executor's parallel bodies runs the nested call serially inline (the
// lanes are already busy). Distinct executors nest freely. Concurrent
// dispatch onto one executor from several threads is serialized internally.
// The one unsupported shape is concurrent *cross*-nesting: thread T1
// dispatching executor B from inside a round on A while T2 dispatches A
// from inside a round on B is a classic lock-order inversion on the two
// pools' round locks and deadlocks — nest distinct executors in one
// consistent order (in this tree, nothing cross-nests at all: each engine
// worker owns exactly one executor).
//
// Exceptions must not escape a parallel body (validate inputs before the
// round, as every call site in this library does); a body that throws
// terminates the process.

#include <cassert>
#include <concepts>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

#include "obs/profiler.hpp"

namespace ncpm::pram {

class Executor;

/// Construction-time configuration for an Executor with optional lane
/// affinity. Pinning is best-effort Linux-only (`pthread_setaffinity_np`);
/// elsewhere `pin_lanes` is ignored and the executor reports unpinned.
///
/// Lane l is pinned to `cpu_set[(cpu_offset + l) % cpu_set.size()]`; lane 0
/// is the constructing/dispatching thread and is pinned in the constructor,
/// so build the executor ON the thread that will dispatch its rounds (the
/// engine builds each worker's executor inside the worker itself). The
/// offset lets workers sharing one cpu_set stagger onto disjoint CPUs.
struct ExecutorConfig {
  int lanes = 0;             ///< pool width; 0 = default_lanes()
  bool pin_lanes = false;    ///< pin each lane thread to one CPU
  std::vector<int> cpu_set;  ///< CPUs to pin onto; empty = allowed_cpus()
  int cpu_offset = 0;        ///< rotation offset into cpu_set
};

/// CPUs this process may run on, in id order (sched_getaffinity on Linux;
/// falls back to 0..hardware_concurrency-1). Never empty.
std::vector<int> allowed_cpus();

/// Parse a taskset-style cpu list ("0", "0,2-4,7") into explicit CPU ids.
/// Returns nullopt on malformed input (empty, stray separators, reversed
/// or unterminated ranges).
std::optional<std::vector<int>> parse_cpu_list(std::string_view text);

namespace detail {

/// The static schedule shared by every lane count: contiguous blocks when
/// `grain` == 0, round-robin chunks of `grain` elements otherwise
/// (mirroring OpenMP's schedule(static) / schedule(static, grain)).
template <typename Body>
void lane_ranges(std::size_t n, std::size_t grain, int lane, int nlanes, Body&& body) {
  const auto nl = static_cast<std::size_t>(nlanes);
  const auto l = static_cast<std::size_t>(lane);
  if (grain == 0) {
    const std::size_t block = (n + nl - 1) / nl;
    const std::size_t lo = l * block;
    if (lo >= n) return;
    const std::size_t hi = n - lo < block ? n : lo + block;
    body(lo, hi);
    return;
  }
  const std::size_t stride = nl * grain;
  for (std::size_t lo = l * grain; lo < n; lo += stride) {
    body(lo, n - lo < grain ? n : lo + grain);
  }
}

/// Debug-only spot check of the parallel_reduce contract: `combine` must be
/// associative and commutative (and `identity` neutral), or the result
/// would depend on the executor width. Samples the first elements; only
/// compiled for equality-comparable T, only run in assert-enabled builds.
template <typename T, typename Map, typename Combine>
void check_reduce_contract(std::size_t n, const T& identity, Map& map, Combine& combine) {
#ifdef NDEBUG
  (void)n;
  (void)identity;
  (void)map;
  (void)combine;
#else
  if constexpr (requires(const T& x, const T& y) {
                  { x == y } -> std::convertible_to<bool>;
                }) {
    if (n < 2) return;
    const T a = map(std::size_t{0});
    const T b = map(std::size_t{1});
    assert(combine(T(a), T(b)) == combine(T(b), T(a)) &&
           "pram::parallel_reduce: combine must be commutative");
    assert(combine(T(identity), T(a)) == a &&
           "pram::parallel_reduce: identity must be neutral for combine");
    if (n < 3) return;
    const T c = map(std::size_t{2});
    assert(combine(combine(T(a), T(b)), T(c)) == combine(T(a), combine(T(b), T(c))) &&
           "pram::parallel_reduce: combine must be associative");
  }
#endif
}

}  // namespace detail

/// A persistent pool of `lanes` worker threads executing synchronous
/// parallel rounds. `Executor(1)` spawns no threads and runs everything
/// inline. Move- and copy-less: share by reference (e.g. via Workspace).
class Executor {
 public:
  /// Pool of `default_lanes()` lanes (hardware concurrency, overridable
  /// with the NCPM_LANES environment variable).
  Executor();
  /// Pool of `lanes` lanes (clamped to >= 1). Lane 0 is the calling
  /// thread; lanes - 1 worker threads are spawned up front and persist.
  explicit Executor(int lanes);
  /// Pool per `config`, optionally pinning every lane (see ExecutorConfig).
  explicit Executor(const ExecutorConfig& config);
  ~Executor();
  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  /// Width of the pool.
  int lanes() const noexcept { return lanes_; }

  /// True when lane pinning was requested, supported, and a cpu set was
  /// resolved (individual setaffinity calls are still best-effort).
  bool pinned() const noexcept { return pin_; }
  /// CPU id lane `lane` targets, or -1 when pinning is off.
  int lane_cpu(int lane) const noexcept;

  /// Cap subsequent rounds to `cap` lanes (clamped to [1, lanes()]).
  /// Cheaper than rebuilding the pool; used by the engine to honour a
  /// per-request ThreadBudget. Not synchronized: call only from the thread
  /// that dispatches this executor's rounds.
  void set_active_lanes(int cap) noexcept {
    active_ = cap < 1 ? 1 : (cap > lanes_ ? lanes_ : cap);
  }
  int active_lanes() const noexcept { return active_; }

  /// Attach (or detach, with nullptr) a solver-phase accumulator. Solver
  /// layers open obs::PhaseScope timers against profiler(); with nothing
  /// attached every scope is a complete no-op. The accumulator must outlive
  /// the attachment and is owned by the caller (the engine attaches one per
  /// worker to the worker's private executor). Not synchronized: call only
  /// from the thread that dispatches this executor's rounds.
  void attach_profiler(obs::PhaseAccum* accum) noexcept { profiler_ = accum; }
  obs::PhaseAccum* profiler() const noexcept { return profiler_; }

  /// Rebuild the pool at a new width, in place: references to this
  /// executor (e.g. from Workspaces) stay valid. Joins the old worker
  /// threads first; must not race with rounds running on this executor.
  void resize(int lanes);

  /// One synchronous parallel round: apply `f(i)` for every i in [0, n).
  template <typename F>
  void parallel_for(std::size_t n, F&& f) {
    parallel_for_grain(n, 0, std::forward<F>(f));
  }

  /// Parallel round with a grain hint for very cheap bodies (round-robin
  /// chunks of `grain` elements per lane).
  template <typename F>
  void parallel_for_grain(std::size_t n, std::size_t grain, F&& f) {
    const int nl = plan_lanes(n);
    if (nl <= 1) {
      for (std::size_t i = 0; i < n; ++i) f(i);
      return;
    }
    using Fn = std::remove_reference_t<F>;
    struct Ctx {
      Fn* f;
      std::size_t n;
      std::size_t grain;
    } ctx{std::addressof(f), n, grain};
    run_task(
        nl,
        [](void* c, int lane, int nlanes) {
          auto& s = *static_cast<Ctx*>(c);
          detail::lane_ranges(s.n, s.grain, lane, nlanes, [&](std::size_t lo, std::size_t hi) {
            for (std::size_t i = lo; i < hi; ++i) (*s.f)(i);
          });
        },
        &ctx);
  }

  /// Parallel reduction: combine `map(i)` for i in [0, n) with `combine`,
  /// starting from `identity`.
  ///
  /// CONTRACT: `combine` must be associative AND commutative, with
  /// `identity` neutral — lane partials cover width-dependent contiguous
  /// blocks and are folded in lane order, so any weaker combine makes the
  /// result depend on the executor width. Debug builds spot-check the
  /// contract on the first elements (see detail::check_reduce_contract),
  /// which calls `map(0..2)` one extra time — `map` must be pure.
  template <typename T, typename Map, typename Combine>
  T parallel_reduce(std::size_t n, T identity, Map&& map, Combine&& combine) {
    detail::check_reduce_contract(n, identity, map, combine);
    const int nl = plan_lanes(n);
    if (nl <= 1) {
      T acc = identity;
      for (std::size_t i = 0; i < n; ++i) acc = combine(std::move(acc), map(i));
      return acc;
    }
    // T = bool must not land in std::vector<bool>: adjacent lanes would
    // race on bits of one shared byte. Store bools as bytes instead.
    using Storage = std::conditional_t<std::is_same_v<T, bool>, unsigned char, T>;
    // Lane partials live on the stack at realistic pool widths: reduces sit
    // inside per-round hot loops (a parallel_any per shortcut jump, per
    // degree-1 check round, ...), which must not pay a heap allocation per
    // round any more than the workspace-pooled buffers do.
    if constexpr (std::is_default_constructible_v<Storage> && std::is_move_assignable_v<Storage>) {
      constexpr int kStackLanes = 32;
      if (nl <= kStackLanes) {
        Storage partial[kStackLanes];
        for (int l = 0; l < nl; ++l) partial[static_cast<std::size_t>(l)] = Storage(identity);
        return reduce_on<T>(nl, partial, n, map, combine);
      }
    }
    std::vector<Storage> partial(static_cast<std::size_t>(nl), Storage(identity));
    return reduce_on<T>(nl, partial.data(), n, map, combine);
  }

  /// Parallel logical-OR reduction over a predicate (common early-exit
  /// test). `pred` must be pure: assert-enabled builds re-invoke it on the
  /// first elements to spot-check the reduce contract.
  template <typename Pred>
  bool parallel_any(std::size_t n, Pred&& pred) {
    return parallel_reduce(
        n, false, [&](std::size_t i) { return static_cast<bool>(pred(i)); },
        [](bool a, bool b) { return a || b; });
  }

  /// Parallel count of indices satisfying a predicate. `pred` must be
  /// pure: assert-enabled builds re-invoke it on the first elements to
  /// spot-check the reduce contract.
  template <typename Pred>
  std::size_t parallel_count(std::size_t n, Pred&& pred) {
    return parallel_reduce(
        n, std::size_t{0},
        [&](std::size_t i) { return pred(i) ? std::size_t{1} : std::size_t{0}; },
        [](std::size_t a, std::size_t b) { return a + b; });
  }

 private:
  struct Pool;
  using TaskFn = void (*)(void* ctx, int lane, int nlanes);

  /// The multi-lane reduce round over caller-provided partial storage
  /// (one `Storage(identity)`-initialized slot per lane).
  template <typename T, typename Storage, typename Map, typename Combine>
  T reduce_on(int nl, Storage* partial, std::size_t n, Map& map, Combine& combine) {
    struct Ctx {
      Map* map;
      Combine* combine;
      Storage* partial;
      std::size_t n;
    } ctx{std::addressof(map), std::addressof(combine), partial, n};
    run_task(
        nl,
        [](void* c, int lane, int nlanes) {
          auto& s = *static_cast<Ctx*>(c);
          T local = static_cast<T>(std::move(s.partial[lane]));
          detail::lane_ranges(s.n, 0, lane, nlanes, [&](std::size_t lo, std::size_t hi) {
            for (std::size_t i = lo; i < hi; ++i) {
              local = (*s.combine)(std::move(local), (*s.map)(i));
            }
          });
          s.partial[lane] = Storage(std::move(local));
        },
        &ctx);
    T result = static_cast<T>(std::move(partial[0]));
    for (int l = 1; l < nl; ++l) {
      result =
          combine(std::move(result), static_cast<T>(std::move(partial[static_cast<std::size_t>(l)])));
    }
    return result;
  }

  /// Lanes this round actually uses: 1 when the pool is serial or the call
  /// nests inside one of this executor's own bodies, else min(active, n).
  /// There is deliberately no small-n inline cutoff beyond n <= 1: per-item
  /// cost varies too widely across call sites (bit rows vs. whole
  /// components) to pick one here — callers with provably cheap tiny
  /// rounds pass a grain instead.
  int plan_lanes(std::size_t n) const noexcept;
  /// Fan `fn(ctx, lane, nlanes)` across lanes 0..nlanes-1 (lane 0 = caller)
  /// and barrier. Serializes concurrent dispatchers.
  void run_task(int nlanes, TaskFn fn, void* ctx);
  void start_pool();
  void stop_pool();

  int lanes_ = 1;
  int active_ = 1;
  obs::PhaseAccum* profiler_ = nullptr;  // not owned; see attach_profiler
  bool pin_ = false;
  std::vector<int> cpus_;  // resolved pin targets; empty when pin_ is false
  int cpu_offset_ = 0;
  std::unique_ptr<Pool> pool_;  // null when lanes_ == 1
};

/// An Executor fixed at one lane: everything runs inline on the calling
/// thread, no threads are ever spawned. The baseline for the determinism
/// oracles and the cheapest executor for callers that want no parallelism.
class SerialExecutor : public Executor {
 public:
  SerialExecutor() : Executor(1) {}
};

/// Default width for new executors: the NCPM_LANES environment variable
/// when set (>= 1), else std::thread::hardware_concurrency().
int default_lanes() noexcept;

/// The process-wide shared executor used by the convenience free functions
/// in parallel.hpp and by Workspaces not bound to an explicit executor.
/// Constructed on first use with default_lanes() lanes.
Executor& default_executor();

/// Resize the shared default executor (clamped to >= 1). Deprecated-shim
/// backend for the old global pram::set_num_threads; must not race with
/// rounds running on the default executor.
void set_default_lanes(int lanes);

}  // namespace ncpm::pram
