#pragma once
// Pointer jumping ("the doubling trick" of Algorithm 2) over successor arrays.
//
// A successor array encodes a functional structure `next[v]`; `next[v] == v`
// marks a terminal. Three families of primitives live here:
//
//  * Wyllie list ranking (`list_rank`, `weighted_list_rank`): distance /
//    weighted distance from every vertex to its terminal, plus the terminal
//    reached. O(log n) doubling rounds. Used for maximal-path processing in
//    Algorithm 2 and switching-path margins in Algorithm 3.
//  * Functional-graph powers (`kth_power`): the map f^K by binary
//    exponentiation of the composition, O(log K) rounds. Used to find the
//    cycles of directed pseudoforests (Section IV-A): for K >= n, the image
//    of f^K is exactly the set of on-cycle vertices.
//  * Windowed min reduction (`window_min`): min of {v, f(v), ..., f^(2^k-1)(v)}
//    per vertex, used to pick canonical roots on cycles.
//
// All functions tolerate cycles: ranking values are only meaningful for
// vertices whose `head` is a terminal; `reaches_terminal` distinguishes them.
//
// Rounds run on the trailing Executor argument (the shared default when
// omitted); the `_into` variants run on the executor bound to the Workspace
// their scratch is leased from.
//
// The doubling rounds themselves run through the pram/simd.hpp gather
// kernels (AVX2 uses vpgather; SSE2/scalar are unrolled loops) — every
// tier is bit-exact, so results don't depend on NCPM_SIMD.

#include <cstddef>
#include <cstdint>
#include <limits>
#include <span>
#include <stdexcept>
#include <vector>

#include "obs/profiler.hpp"
#include "pram/counters.hpp"
#include "pram/executor.hpp"
#include "pram/simd.hpp"
#include "pram/workspace.hpp"

namespace ncpm::pram {

inline constexpr std::int32_t kNone = -1;

namespace detail {

/// Run `body(lo, hi)` over the executor's static block decomposition of
/// [0, n) — the bridge from per-element rounds to the block kernels.
template <typename Body>
void for_blocks(Executor& ex, std::size_t n, Body&& body) {
  if (n == 0) return;
  const auto nlanes = static_cast<std::size_t>(ex.lanes());
  const std::size_t block = (n + nlanes - 1) / nlanes;
  const std::size_t nblocks = (n + block - 1) / block;
  ex.parallel_for(nblocks, [&](std::size_t b) {
    const std::size_t lo = b * block;
    const std::size_t hi = lo + block < n ? lo + block : n;
    body(lo, hi);
  });
}

}  // namespace detail

/// ceil(log2(n)) for n >= 1; 0 for n <= 1.
inline std::uint32_t ceil_log2(std::uint64_t n) noexcept {
  std::uint32_t k = 0;
  std::uint64_t p = 1;
  while (p < n) {
    p <<= 1U;
    ++k;
  }
  return k;
}

struct ListRanking {
  /// head[v]: the vertex reached by following `next` to a fixed point; equals
  /// the terminal of v's list when v's chain ends, or a vertex still "moving"
  /// if v lies on / leads into a cycle longer than 1.
  std::vector<std::int32_t> head;
  /// rank[v]: number of `next` steps from v to head[v] (sum of weights for the
  /// weighted variant). Meaningful only when head[v] is a terminal.
  std::vector<std::int64_t> rank;
  /// reaches_terminal[v]: head[v] is a true terminal (next[head] == head).
  std::vector<std::uint8_t> reaches_terminal;
};

namespace detail {

template <typename WeightAt>
ListRanking list_rank_impl(std::span<const std::int32_t> next, WeightAt&& weight_at,
                           Executor& ex, NcCounters* counters) {
  const std::size_t n = next.size();
  ListRanking r;
  r.head.resize(n);
  r.rank.resize(n);
  r.reaches_terminal.assign(n, 0);

  // Validate outside the parallel region: a body must not throw.
  const bool bad = ex.parallel_any(n, [&](std::size_t v) {
    return next[v] < 0 || static_cast<std::size_t>(next[v]) >= n;
  });
  if (bad) throw std::out_of_range("list_rank: successor out of range");

  ex.parallel_for(n, [&](std::size_t v) {
    const std::int32_t nx = next[v];
    r.head[v] = nx;
    r.rank[v] = (static_cast<std::size_t>(nx) == v) ? 0 : weight_at(v);
  });
  add_round(counters, n);

  std::vector<std::int32_t> nhead(n);
  std::vector<std::int64_t> nrank(n);
  const std::uint32_t rounds = ceil_log2(n) + 1;
  for (std::uint32_t k = 0; k < rounds; ++k) {
    for_blocks(ex, n, [&](std::size_t lo, std::size_t hi) {
      simd::list_rank_round(r.head.data(), r.rank.data(), nhead.data(),
                            nrank.data(), lo, hi);
    });
    r.head.swap(nhead);
    r.rank.swap(nrank);
    add_round(counters, n);
  }

  ex.parallel_for(n, [&](std::size_t v) {
    const auto h = static_cast<std::size_t>(r.head[v]);
    r.reaches_terminal[v] = (static_cast<std::size_t>(next[h]) == h) ? 1 : 0;
  });
  add_round(counters, n);
  return r;
}

}  // namespace detail

/// Wyllie pointer-jumping list ranking: rank[v] = #steps from v to its
/// terminal, head[v] = that terminal. Vertices on (or leading into) cycles get
/// reaches_terminal[v] == 0 and unspecified rank.
inline ListRanking list_rank(std::span<const std::int32_t> next, NcCounters* counters = nullptr,
                             Executor& ex = default_executor()) {
  obs::PhaseScope phase(ex.profiler(), obs::Phase::kListRank);
  return detail::list_rank_impl(next, [](std::size_t) { return std::int64_t{1}; }, ex, counters);
}

/// Caller-provided destination arrays for the allocation-free ranking.
struct ListRankingSpans {
  std::span<std::int32_t> head;
  std::span<std::int64_t> rank;
  std::span<std::uint8_t> reaches_terminal;
};

/// Wyllie ranking into caller-provided arrays; doubling scratch is leased
/// from `ws` and rounds run on `ws`'s executor, so a warm workspace makes
/// the whole pass allocation-free.
inline void list_rank_into(std::span<const std::int32_t> next, const ListRankingSpans& out,
                           Workspace& ws, NcCounters* counters = nullptr) {
  const std::size_t n = next.size();
  if (out.head.size() != n || out.rank.size() != n || out.reaches_terminal.size() != n) {
    throw std::invalid_argument("list_rank_into: output span size mismatch");
  }
  obs::PhaseScope phase(ws.profiler(), obs::Phase::kListRank);
  Executor& ex = ws.exec();
  const bool bad = ex.parallel_any(n, [&](std::size_t v) {
    return next[v] < 0 || static_cast<std::size_t>(next[v]) >= n;
  });
  if (bad) throw std::out_of_range("list_rank_into: successor out of range");

  auto tmp_head = ws.take<std::int32_t>(n);
  auto tmp_rank = ws.take<std::int64_t>(n);
  std::span<std::int32_t> head_cur = out.head;
  std::span<std::int32_t> head_nxt = tmp_head.span();
  std::span<std::int64_t> rank_cur = out.rank;
  std::span<std::int64_t> rank_nxt = tmp_rank.span();

  ex.parallel_for(n, [&](std::size_t v) {
    const std::int32_t nx = next[v];
    head_cur[v] = nx;
    rank_cur[v] = (static_cast<std::size_t>(nx) == v) ? 0 : 1;
  });
  add_round(counters, n);

  const std::uint32_t rounds = ceil_log2(n) + 1;
  for (std::uint32_t k = 0; k < rounds; ++k) {
    detail::for_blocks(ex, n, [&](std::size_t lo, std::size_t hi) {
      simd::list_rank_round(head_cur.data(), rank_cur.data(), head_nxt.data(),
                            rank_nxt.data(), lo, hi);
    });
    std::swap(head_cur, head_nxt);
    std::swap(rank_cur, rank_nxt);
    add_round(counters, n);
  }
  if (head_cur.data() != out.head.data()) {
    ex.parallel_for(n, [&](std::size_t v) {
      out.head[v] = head_cur[v];
      out.rank[v] = rank_cur[v];
    });
    add_round(counters, n);
  }

  ex.parallel_for(n, [&](std::size_t v) {
    const auto h = static_cast<std::size_t>(out.head[v]);
    out.reaches_terminal[v] = (static_cast<std::size_t>(next[h]) == h) ? 1 : 0;
  });
  add_round(counters, n);
}

/// Weighted ranking: rank[v] = sum of weight[u] over every non-terminal u on
/// the path from v (inclusive) to its terminal (exclusive).
inline ListRanking weighted_list_rank(std::span<const std::int32_t> next,
                                      std::span<const std::int64_t> weight,
                                      NcCounters* counters = nullptr,
                                      Executor& ex = default_executor()) {
  if (weight.size() != next.size()) {
    throw std::invalid_argument("weighted_list_rank: weight/next size mismatch");
  }
  return detail::list_rank_impl(
      next, [&](std::size_t v) { return weight[v]; }, ex, counters);
}

/// Compose two successor maps: result(v) = g[f[v]] ("apply f, then g").
inline std::vector<std::int32_t> compose(std::span<const std::int32_t> g,
                                         std::span<const std::int32_t> f,
                                         NcCounters* counters = nullptr,
                                         Executor& ex = default_executor()) {
  const std::size_t n = f.size();
  if (g.size() != n) throw std::invalid_argument("compose: size mismatch");
  std::vector<std::int32_t> out(n);
  ex.parallel_for(n, [&](std::size_t v) { out[v] = g[static_cast<std::size_t>(f[v])]; });
  add_round(counters, n);
  return out;
}

/// The map f^K (K >= 1 applications of `next`) via binary exponentiation of
/// the composition; O(log K) composition rounds.
inline std::vector<std::int32_t> kth_power(std::span<const std::int32_t> next, std::uint64_t k,
                                           NcCounters* counters = nullptr,
                                           Executor& ex = default_executor()) {
  const std::size_t n = next.size();
  std::vector<std::int32_t> result(n);
  ex.parallel_for(n, [&](std::size_t v) { result[v] = static_cast<std::int32_t>(v); });
  add_round(counters, n);
  std::vector<std::int32_t> base(next.begin(), next.end());
  while (k > 0) {
    if ((k & 1U) != 0) result = compose(base, result, counters, ex);
    k >>= 1U;
    if (k > 0) base = compose(base, base, counters, ex);
  }
  return result;
}

/// window_min[v] = min over {key[v], key[f(v)], ..., key[f^(w-1)(v)]} where the
/// window size w is the smallest power of two >= `window`. Used to elect the
/// minimum-key vertex of every cycle (window >= cycle length covers the cycle).
inline std::vector<std::int64_t> window_min(std::span<const std::int32_t> next,
                                            std::span<const std::int64_t> key,
                                            std::uint64_t window,
                                            NcCounters* counters = nullptr,
                                            Executor& ex = default_executor()) {
  const std::size_t n = next.size();
  if (key.size() != n) throw std::invalid_argument("window_min: size mismatch");
  obs::PhaseScope phase(ex.profiler(), obs::Phase::kWindowMin);
  std::vector<std::int64_t> val(key.begin(), key.end());
  std::vector<std::int32_t> jump(next.begin(), next.end());
  std::vector<std::int64_t> nval(n);
  std::vector<std::int32_t> njump(n);
  const std::uint32_t rounds = ceil_log2(window == 0 ? 1 : window);
  for (std::uint32_t k = 0; k < rounds; ++k) {
    detail::for_blocks(ex, n, [&](std::size_t lo, std::size_t hi) {
      simd::window_min_round(val.data(), jump.data(), nval.data(), njump.data(),
                             lo, hi);
    });
    val.swap(nval);
    jump.swap(njump);
    add_round(counters, n);
  }
  return val;
}

/// window_min into a caller-provided array, doubling scratch from `ws` and
/// rounds on `ws`'s executor.
inline void window_min_into(std::span<const std::int32_t> next, std::span<const std::int64_t> key,
                            std::uint64_t window, std::span<std::int64_t> out, Workspace& ws,
                            NcCounters* counters = nullptr) {
  const std::size_t n = next.size();
  if (key.size() != n || out.size() != n) {
    throw std::invalid_argument("window_min_into: size mismatch");
  }
  obs::PhaseScope phase(ws.profiler(), obs::Phase::kWindowMin);
  Executor& ex = ws.exec();
  auto tmp_val = ws.take<std::int64_t>(n);
  auto jump_a = ws.take<std::int32_t>(n);
  auto jump_b = ws.take<std::int32_t>(n);
  std::span<std::int64_t> val_cur = out;
  std::span<std::int64_t> val_nxt = tmp_val.span();
  std::span<std::int32_t> jump_cur = jump_a.span();
  std::span<std::int32_t> jump_nxt = jump_b.span();
  ex.parallel_for(n, [&](std::size_t v) {
    val_cur[v] = key[v];
    jump_cur[v] = next[v];
  });
  add_round(counters, n);
  const std::uint32_t rounds = ceil_log2(window == 0 ? 1 : window);
  for (std::uint32_t k = 0; k < rounds; ++k) {
    detail::for_blocks(ex, n, [&](std::size_t lo, std::size_t hi) {
      simd::window_min_round(val_cur.data(), jump_cur.data(), val_nxt.data(),
                             jump_nxt.data(), lo, hi);
    });
    std::swap(val_cur, val_nxt);
    std::swap(jump_cur, jump_nxt);
    add_round(counters, n);
  }
  if (val_cur.data() != out.data()) {
    ex.parallel_for(n, [&](std::size_t v) { out[v] = val_cur[v]; });
    add_round(counters, n);
  }
}

}  // namespace ncpm::pram
