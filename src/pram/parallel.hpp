#pragma once
// Round-synchronous PRAM substrate on top of OpenMP.
//
// The paper's algorithms are stated for CREW/CRCW PRAMs with a polynomial
// number of processors. We simulate that model with a fixed pool of hardware
// threads: one `parallel_for` call is one *synchronous parallel round* (all
// iterations independent, implicit barrier at the end). NC depth claims are
// validated by counting rounds of the algorithms' outer loops (see
// counters.hpp), not by wall-clock alone.

#include <cstddef>
#include <cstdint>
#include <utility>

#include <omp.h>

namespace ncpm::pram {

/// Number of worker threads used for parallel rounds.
inline int num_threads() noexcept { return omp_get_max_threads(); }

/// Set the worker-thread count for subsequent rounds (clamped to >= 1).
inline void set_num_threads(int t) noexcept { omp_set_num_threads(t < 1 ? 1 : t); }

/// One synchronous parallel round: apply `f(i)` for every i in [0, n).
/// Iterations must be independent (EREW/CREW discipline; concurrent writes
/// only through atomics, mirroring CRCW where an algorithm needs it).
template <typename F>
void parallel_for(std::size_t n, F&& f) {
  const auto limit = static_cast<std::int64_t>(n);
#pragma omp parallel for schedule(static)
  for (std::int64_t i = 0; i < limit; ++i) {
    f(static_cast<std::size_t>(i));
  }
}

/// Parallel round with a grain hint for very cheap bodies.
template <typename F>
void parallel_for_grain(std::size_t n, std::size_t grain, F&& f) {
  const auto limit = static_cast<std::int64_t>(n);
  const auto g = static_cast<std::int64_t>(grain == 0 ? 1 : grain);
#pragma omp parallel for schedule(static, g)
  for (std::int64_t i = 0; i < limit; ++i) {
    f(static_cast<std::size_t>(i));
  }
}

/// Parallel reduction: combine `map(i)` for i in [0, n) with `combine`,
/// starting from `identity`. `combine` must be associative and commutative.
template <typename T, typename Map, typename Combine>
T parallel_reduce(std::size_t n, T identity, Map&& map, Combine&& combine) {
  T result = identity;
  const auto limit = static_cast<std::int64_t>(n);
#pragma omp parallel
  {
    T local = identity;
#pragma omp for schedule(static) nowait
    for (std::int64_t i = 0; i < limit; ++i) {
      local = combine(std::move(local), map(static_cast<std::size_t>(i)));
    }
#pragma omp critical(ncpm_pram_reduce)
    result = combine(std::move(result), std::move(local));
  }
  return result;
}

/// Parallel logical-OR reduction over a predicate (common early-exit test).
template <typename Pred>
bool parallel_any(std::size_t n, Pred&& pred) {
  return parallel_reduce(
      n, false, [&](std::size_t i) { return static_cast<bool>(pred(i)); },
      [](bool a, bool b) { return a || b; });
}

/// Parallel count of indices satisfying a predicate.
template <typename Pred>
std::size_t parallel_count(std::size_t n, Pred&& pred) {
  return parallel_reduce(
      n, std::size_t{0},
      [&](std::size_t i) { return pred(i) ? std::size_t{1} : std::size_t{0}; },
      [](std::size_t a, std::size_t b) { return a + b; });
}

}  // namespace ncpm::pram
