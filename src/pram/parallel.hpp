#pragma once
// Convenience round-synchronous primitives on the shared default executor.
//
// The substrate itself lives in executor.hpp: an Executor is a persistent
// lane pool whose methods run synchronous parallel rounds, and parallelism
// is a per-call property threaded through the pipeline (usually inside a
// pram::Workspace). The free functions here simply forward to the shared
// `default_executor()` — they keep simple callers (tests, examples,
// one-shot utilities) simple, and carry the old OpenMP-era names.
//
// There is deliberately NO process-global thread count any more:
// `set_num_threads` survives only as a deprecated shim that resizes the
// default executor. Code that needs an explicit width should build its own
// `Executor` (or `SerialExecutor`) and pass it along — see executor.hpp.

#include <cstddef>
#include <cstdio>
#include <thread>
#include <utility>

#include "pram/executor.hpp"

namespace ncpm::pram {

/// Deprecated shim for the retired process-global setter: resizes the
/// shared default executor. Executors already handed to Workspaces keep
/// working (the resize is in place), but per-call parallelism should come
/// from an explicit Executor instead. The request is clamped to
/// [1, hardware_concurrency()] — the old OpenMP ICV accepted arbitrary
/// values, and oversubscribing the barrier-per-round pool only adds
/// context-switch latency to every round. Warns once on stderr. Unlike
/// the old per-thread ICV this touches shared state: call it only from
/// single-threaded setup code — never concurrently, and never while any
/// thread runs rounds on the default executor.
[[deprecated(
    "process-global thread state is gone; construct a pram::Executor and carry it "
    "per call (e.g. via pram::Workspace); if you must call this shim, do so only "
    "during single-threaded setup")]]
inline void set_num_threads(int t) {
  const unsigned hw = std::thread::hardware_concurrency();
  const int cap = hw == 0 ? 1 : static_cast<int>(hw);
  const int clamped = t < 1 ? 1 : (t > cap ? cap : t);
  static bool warned = false;  // setup-only contract: no synchronization
  if (!warned) {
    warned = true;
    std::fprintf(stderr,
                 "ncpm: pram::set_num_threads is deprecated; resizing the default "
                 "executor to %d lane(s) (requested %d, hardware limit %d). "
                 "Construct a pram::Executor instead.\n",
                 clamped, t, cap);
  }
  set_default_lanes(clamped);
}

/// One synchronous parallel round on the default executor.
template <typename F>
void parallel_for(std::size_t n, F&& f) {
  default_executor().parallel_for(n, std::forward<F>(f));
}

/// Parallel round with a grain hint, on the default executor.
template <typename F>
void parallel_for_grain(std::size_t n, std::size_t grain, F&& f) {
  default_executor().parallel_for_grain(n, grain, std::forward<F>(f));
}

/// Parallel reduction on the default executor. `combine` must be
/// associative and commutative (see Executor::parallel_reduce).
template <typename T, typename Map, typename Combine>
T parallel_reduce(std::size_t n, T identity, Map&& map, Combine&& combine) {
  return default_executor().parallel_reduce(n, std::move(identity), std::forward<Map>(map),
                                            std::forward<Combine>(combine));
}

/// Parallel logical-OR reduction over a predicate (common early-exit test).
template <typename Pred>
bool parallel_any(std::size_t n, Pred&& pred) {
  return default_executor().parallel_any(n, std::forward<Pred>(pred));
}

/// Parallel count of indices satisfying a predicate.
template <typename Pred>
std::size_t parallel_count(std::size_t n, Pred&& pred) {
  return default_executor().parallel_count(n, std::forward<Pred>(pred));
}

}  // namespace ncpm::pram
