// Experiment C4 (Section IV-A ablation): the four NC cycle-finding methods
// on random directed pseudoforests. The paper offers transitive closure,
// incidence-matrix rank and per-edge component counting as alternatives;
// pointer doubling is the natural functional-graph method. All return the
// same cycles (tested); this measures their very different work terms:
// pointer doubling O(n log n), transitive closure O(n^3 log n / 64), the
// per-edge methods O(n) component computations.

#include <benchmark/benchmark.h>

#include <random>

#include "graph/pseudoforest.hpp"

namespace {

ncpm::graph::DirectedPseudoforest random_pf(std::size_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  ncpm::graph::DirectedPseudoforest pf;
  pf.next.resize(n);
  for (std::size_t v = 0; v < n; ++v) {
    pf.next[v] = (rng() % 8 == 0) ? ncpm::pram::kNone : static_cast<std::int32_t>(rng() % n);
  }
  return pf;
}

template <ncpm::graph::CycleMethod Method>
void BM_CycleMethod(benchmark::State& state) {
  const auto pf = random_pf(static_cast<std::size_t>(state.range(0)), 5);
  std::size_t cycle_vertices = 0;
  for (auto _ : state) {
    auto mask = ncpm::graph::cycle_members(pf, Method);
    cycle_vertices = 0;
    for (const auto b : mask) cycle_vertices += b;
    benchmark::DoNotOptimize(mask);
  }
  state.counters["cycle_vertices"] = static_cast<double>(cycle_vertices);
}

BENCHMARK_TEMPLATE(BM_CycleMethod, ncpm::graph::CycleMethod::PointerDoubling)
    ->RangeMultiplier(4)->Range(1 << 8, 1 << 20)->Unit(benchmark::kMillisecond)
    ->Name("BM_Cycles_PointerDoubling");
BENCHMARK_TEMPLATE(BM_CycleMethod, ncpm::graph::CycleMethod::TransitiveClosure)
    ->RangeMultiplier(4)->Range(1 << 8, 1 << 12)->Unit(benchmark::kMillisecond)
    ->Name("BM_Cycles_TransitiveClosure");
BENCHMARK_TEMPLATE(BM_CycleMethod, ncpm::graph::CycleMethod::Gf2Rank)
    ->RangeMultiplier(2)->Range(1 << 6, 1 << 8)->Unit(benchmark::kMillisecond)
    ->Name("BM_Cycles_Gf2Rank");
BENCHMARK_TEMPLATE(BM_CycleMethod, ncpm::graph::CycleMethod::EdgeRemovalCC)
    ->RangeMultiplier(2)->Range(1 << 6, 1 << 9)->Unit(benchmark::kMillisecond)
    ->Name("BM_Cycles_EdgeRemovalCC");

// Full analysis (roots, distances, lengths, ordered cycles) at scale with
// the default method — what Algorithms 3 and 4 actually consume.
void BM_FullAnalysis(benchmark::State& state) {
  const auto pf = random_pf(static_cast<std::size_t>(state.range(0)), 9);
  for (auto _ : state) {
    auto analysis = ncpm::graph::analyze_cycles(pf);
    benchmark::DoNotOptimize(analysis);
  }
}
BENCHMARK(BM_FullAnalysis)->RangeMultiplier(4)->Range(1 << 8, 1 << 20)
    ->Unit(benchmark::kMillisecond);

}  // namespace
