// Experiment C9: executor-lane scaling of the end-to-end NC pipeline. A
// PRAM algorithm on p << n cores can only show p-bounded speedup; the
// reproduced claim is that the implementation scales with cores until the
// memory system saturates, while the sequential baseline (single-threaded
// by nature) stays flat. Each width is a private pram::Executor bound via a
// Workspace — no global state. UseRealTime because pool-thread work does
// not appear in per-thread CPU time.

#include <benchmark/benchmark.h>

#include "core/abraham_baseline.hpp"
#include "core/max_card_popular.hpp"
#include "core/popular_matching.hpp"
#include "gen/generators.hpp"
#include "pram/executor.hpp"
#include "pram/workspace.hpp"

namespace {

constexpr std::int32_t kN = 1 << 18;

const ncpm::core::Instance& big_instance() {
  static const ncpm::core::Instance inst = [] {
    ncpm::gen::SolvableConfig cfg;
    cfg.num_applicants = kN;
    cfg.num_posts = kN + kN / 2;
    cfg.list_min = 2;
    cfg.list_max = 6;
    cfg.all_f_fraction = 0.3;
    cfg.contention = 3.0;
    cfg.seed = 2024;
    return ncpm::gen::solvable_strict_instance(cfg);
  }();
  return inst;
}

void BM_PopularNC_Threads(benchmark::State& state) {
  const auto& inst = big_instance();
  ncpm::pram::Executor ex(static_cast<int>(state.range(0)));
  ncpm::pram::Workspace ws(ex);
  for (auto _ : state) {
    auto m = ncpm::core::find_popular_matching(inst, ws);
    benchmark::DoNotOptimize(m);
  }
  state.counters["threads"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_PopularNC_Threads)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(24)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_MaxCardNC_Threads(benchmark::State& state) {
  const auto& inst = big_instance();
  ncpm::pram::Executor ex(static_cast<int>(state.range(0)));
  ncpm::pram::Workspace ws(ex);
  for (auto _ : state) {
    auto m = ncpm::core::find_max_card_popular(inst, ws);
    benchmark::DoNotOptimize(m);
  }
  state.counters["threads"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_MaxCardNC_Threads)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(24)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

// Large sparse configuration (see bench_popular.cpp): chain-heavy reduced
// graph with many while-rounds, where per-round work proportional to the
// surviving edges — not the original m — decides the wall-clock.
const ncpm::core::Instance& sparse_instance() {
  static const ncpm::core::Instance inst = ncpm::gen::binary_tree_instance(17);
  return inst;
}

void BM_PopularNC_LargeSparse_Threads(benchmark::State& state) {
  const auto& inst = sparse_instance();
  ncpm::pram::Executor ex(static_cast<int>(state.range(0)));
  ncpm::pram::Workspace ws(ex);
  for (auto _ : state) {
    auto m = ncpm::core::find_popular_matching(inst, ws);
    benchmark::DoNotOptimize(m);
  }
  state.counters["threads"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_PopularNC_LargeSparse_Threads)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_SequentialBaseline_Reference(benchmark::State& state) {
  const auto& inst = big_instance();
  for (auto _ : state) {
    auto m = ncpm::core::find_popular_matching_sequential(inst);
    benchmark::DoNotOptimize(m);
  }
}
BENCHMARK(BM_SequentialBaseline_Reference)->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace
