// Experiment C8: the PRAM / graph / algebra substrates the NC algorithms
// stand on — prefix sums, pointer jumping, connected components, transitive
// closure, GF(2) rank, the 2-regular matcher and the Euler-split matcher.
// Round counters validate the depth claims (Theorems 5, 7, 8 stand-ins).

#include <benchmark/benchmark.h>

#include <numeric>
#include <random>

#include "graph/connected_components.hpp"
#include "graph/transitive_closure.hpp"
#include "linalg/gf2_kernels.hpp"
#include "linalg/incidence.hpp"
#include "matching/euler_split.hpp"
#include "matching/two_regular.hpp"
#include "pram/list_ranking.hpp"
#include "pram/scan.hpp"
#include "pram/simd.hpp"

namespace {

// A/B harness for the SIMD substrate: arg "simd" = 0 forces the scalar tier
// for the duration of the benchmark, 1 leaves runtime dispatch in charge.
// The active tier lands in the "simd_tier" counter (0 scalar / 1 sse2 /
// 2 avx2) so result JSON self-describes which series is which; on a machine
// without vector units both series legitimately coincide.
struct SimdAB {
  explicit SimdAB(benchmark::State& state) {
    if (state.range(1) == 0) ncpm::pram::force_simd_tier(ncpm::pram::SimdTier::kScalar);
    state.counters["simd_tier"] =
        static_cast<double>(ncpm::pram::active_simd_tier());
  }
  ~SimdAB() { ncpm::pram::clear_forced_simd_tier(); }
};

void BM_ExclusiveScan(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<std::int64_t> in(n, 3), out(n);
  for (auto _ : state) {
    auto total = ncpm::pram::exclusive_scan<std::int64_t>(in, out);
    benchmark::DoNotOptimize(total);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n) * static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ExclusiveScan)->RangeMultiplier(8)->Range(1 << 10, 1 << 24);

void BM_ListRanking(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  // One long chain — the worst case for naive traversal, log n doublings here.
  std::vector<std::int32_t> next(n);
  for (std::size_t v = 0; v + 1 < n; ++v) next[v] = static_cast<std::int32_t>(v + 1);
  next[n - 1] = static_cast<std::int32_t>(n - 1);
  ncpm::pram::NcCounters counters;
  for (auto _ : state) {
    counters.reset();
    auto r = ncpm::pram::list_rank(next, &counters);
    benchmark::DoNotOptimize(r);
  }
  state.counters["doubling_rounds"] = static_cast<double>(counters.rounds);
}
BENCHMARK(BM_ListRanking)->RangeMultiplier(8)->Range(1 << 10, 1 << 22)
    ->Unit(benchmark::kMillisecond);

void BM_ConnectedComponents(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::mt19937_64 rng(5);
  const std::size_t m = 2 * n;
  std::vector<std::int32_t> eu(m), ev(m);
  for (std::size_t j = 0; j < m; ++j) {
    eu[j] = static_cast<std::int32_t>(rng() % n);
    ev[j] = static_cast<std::int32_t>(rng() % n);
  }
  std::uint64_t hook_rounds = 0;
  for (auto _ : state) {
    auto cc = ncpm::graph::connected_components(n, eu, ev);
    hook_rounds = cc.hook_rounds;
    benchmark::DoNotOptimize(cc);
  }
  state.counters["hook_rounds"] = static_cast<double>(hook_rounds);
}
BENCHMARK(BM_ConnectedComponents)->RangeMultiplier(8)->Range(1 << 10, 1 << 22)
    ->Unit(benchmark::kMillisecond);

void BM_TransitiveClosure(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::mt19937_64 rng(7);
  std::vector<std::int32_t> tail(2 * n), head(2 * n);
  for (std::size_t j = 0; j < 2 * n; ++j) {
    tail[j] = static_cast<std::int32_t>(rng() % n);
    head[j] = static_cast<std::int32_t>(rng() % n);
  }
  const auto a = ncpm::graph::adjacency_matrix(n, tail, head);
  ncpm::pram::NcCounters counters;
  for (auto _ : state) {
    counters.reset();
    auto tc = ncpm::graph::transitive_closure(a, &counters);
    benchmark::DoNotOptimize(tc);
  }
  state.counters["squaring_rounds"] = static_cast<double>(counters.rounds);
}
BENCHMARK(BM_TransitiveClosure)->RangeMultiplier(2)->Range(1 << 7, 1 << 12)
    ->Unit(benchmark::kMillisecond);

void BM_Gf2Rank(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::mt19937_64 rng(9);
  std::vector<std::int32_t> eu(n), ev(n);
  for (std::size_t j = 0; j < n; ++j) {
    eu[j] = static_cast<std::int32_t>(rng() % n);
    ev[j] = static_cast<std::int32_t>(rng() % n);
  }
  const auto m = ncpm::linalg::incidence_matrix(n, eu, ev);
  for (auto _ : state) {
    auto rank = m.gf2_rank();
    benchmark::DoNotOptimize(rank);
  }
}
BENCHMARK(BM_Gf2Rank)->RangeMultiplier(2)->Range(1 << 7, 1 << 11)
    ->Unit(benchmark::kMillisecond);

void BM_TwoRegularMatching(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0)) & ~std::size_t{1};
  // One giant even cycle.
  std::vector<std::int32_t> eu(n), ev(n);
  for (std::size_t v = 0; v < n; ++v) {
    eu[v] = static_cast<std::int32_t>(v);
    ev[v] = static_cast<std::int32_t>((v + 1) % n);
  }
  const std::vector<std::uint8_t> alive(n, 1);
  for (auto _ : state) {
    auto m = ncpm::matching::two_regular_perfect_matching(n, eu, ev, alive);
    benchmark::DoNotOptimize(m);
  }
}
BENCHMARK(BM_TwoRegularMatching)->RangeMultiplier(8)->Range(1 << 10, 1 << 22)
    ->Unit(benchmark::kMillisecond);

void BM_EulerSplitRegularMatching(benchmark::State& state) {
  const auto n = static_cast<std::int32_t>(state.range(0));
  const std::int32_t d = 8;
  std::mt19937_64 rng(11);
  std::vector<std::pair<std::int32_t, std::int32_t>> edges;
  std::vector<std::int32_t> perm(static_cast<std::size_t>(n));
  std::iota(perm.begin(), perm.end(), 0);
  for (std::int32_t k = 0; k < d; ++k) {
    std::shuffle(perm.begin(), perm.end(), rng);
    for (std::int32_t l = 0; l < n; ++l) edges.emplace_back(l, perm[static_cast<std::size_t>(l)]);
  }
  const ncpm::graph::BipartiteGraph g(n, n, std::move(edges));
  for (auto _ : state) {
    auto m = ncpm::matching::regular_bipartite_perfect_matching(g);
    benchmark::DoNotOptimize(m);
  }
}
BENCHMARK(BM_EulerSplitRegularMatching)->RangeMultiplier(4)->Range(1 << 10, 1 << 18)
    ->Unit(benchmark::kMillisecond);

// The GF(2) word kernels under BitMatrix, scalar vs dispatched: one
// elimination-shaped pass (XOR a pivot row into every other row) plus a
// popcount sweep over a words_per_row-sized row set.
void BM_Gf2RowOps(benchmark::State& state) {
  SimdAB ab(state);
  const auto words = static_cast<std::size_t>(state.range(0));
  std::mt19937_64 rng(13);
  std::vector<std::uint64_t> pivot(words);
  std::vector<std::uint64_t> row(words);
  for (auto& w : pivot) w = rng();
  for (auto& w : row) w = rng();
  for (auto _ : state) {
    ncpm::linalg::gf2k::row_xor(row.data(), pivot.data(), words);
    auto pop = ncpm::linalg::gf2k::and_popcount(row.data(), pivot.data(), words);
    benchmark::DoNotOptimize(pop);
    benchmark::DoNotOptimize(row.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * words * sizeof(std::uint64_t)));
}
BENCHMARK(BM_Gf2RowOps)
    ->ArgsProduct({{1 << 6, 1 << 10, 1 << 14, 1 << 18}, {0, 1}});

// The blocked-scan substrate (sum + exclusive_scan_carry per block), scalar
// vs dispatched, single lane so the series isolates the kernels rather than
// the barrier.
void BM_ScanTiled(benchmark::State& state) {
  SimdAB ab(state);
  const auto n = static_cast<std::size_t>(state.range(0));
  ncpm::pram::Executor ex(1);
  std::vector<std::uint32_t> in(n, 3), out(n);
  for (auto _ : state) {
    auto total = ncpm::pram::exclusive_scan<std::uint32_t>(in, out, nullptr, ex);
    benchmark::DoNotOptimize(total);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n) *
                          static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ScanTiled)
    ->ArgsProduct({{1 << 10, 1 << 14, 1 << 18, 1 << 22}, {0, 1}});

// Dispatch + barrier cost of one executor round over a trivial body, per
// lane count: the fixed price every synchronous PRAM round pays on this
// substrate. Lanes = 1 is the inline path (no pool, no barrier) — the
// regression gate for "the executor costs nothing when parallelism is off".
void BM_ExecutorOverhead(benchmark::State& state) {
  ncpm::pram::Executor ex(static_cast<int>(state.range(0)));
  const auto n = static_cast<std::size_t>(state.range(1));
  std::vector<std::int64_t> out(n);
  for (auto _ : state) {
    ex.parallel_for(n, [&](std::size_t i) { out[i] = static_cast<std::int64_t>(i); });
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n) *
                          static_cast<std::int64_t>(state.iterations()));
  state.counters["lanes"] = static_cast<double>(state.range(0));
}
// UseRealTime: lane 0 blocks in the round barrier, which accrues no
// per-thread CPU time — exactly the overhead being measured.
BENCHMARK(BM_ExecutorOverhead)
    ->ArgsProduct({{1, 2, 4, 8}, {1 << 10, 1 << 16, 1 << 20}})
    ->UseRealTime();

}  // namespace
