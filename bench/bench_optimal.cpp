// Experiment C5 (Section IV-E): optimal popular matchings. The profile
// variants pay one margin pass per rank bucket instead of the paper's
// n^(R+1) integer weights; `profile_dim` reports the bucket count.

#include <benchmark/benchmark.h>

#include "core/max_card_popular.hpp"
#include "core/optimal_popular.hpp"
#include "gen/generators.hpp"

namespace {

ncpm::core::Instance instance_for(std::int64_t n) {
  ncpm::gen::SolvableConfig cfg;
  cfg.num_applicants = static_cast<std::int32_t>(n);
  cfg.num_posts = static_cast<std::int32_t>(n + n / 2);
  cfg.list_min = 2;
  cfg.list_max = 6;
  cfg.all_f_fraction = 0.3;
  cfg.contention = 3.0;
  cfg.seed = 23;
  return ncpm::gen::solvable_strict_instance(cfg);
}

void BM_RankMaximalPopular(benchmark::State& state) {
  const auto inst = instance_for(state.range(0));
  for (auto _ : state) {
    auto m = ncpm::core::find_rank_maximal_popular(inst);
    benchmark::DoNotOptimize(m);
  }
  state.counters["profile_dim"] = static_cast<double>(inst.max_ranks() + 1);
}
BENCHMARK(BM_RankMaximalPopular)->RangeMultiplier(4)->Range(1 << 8, 1 << 15)
    ->Unit(benchmark::kMillisecond);

void BM_FairPopular(benchmark::State& state) {
  const auto inst = instance_for(state.range(0));
  for (auto _ : state) {
    auto m = ncpm::core::find_fair_popular(inst);
    benchmark::DoNotOptimize(m);
  }
}
BENCHMARK(BM_FairPopular)->RangeMultiplier(4)->Range(1 << 8, 1 << 15)
    ->Unit(benchmark::kMillisecond);

void BM_MaxWeightPopular(benchmark::State& state) {
  const auto inst = instance_for(state.range(0));
  const ncpm::core::WeightFn weight = [&inst](std::int32_t a, std::int32_t p) {
    if (inst.is_last_resort(p)) return std::int64_t{0};
    return static_cast<std::int64_t>((a * 131 + p * 17) % 1000);
  };
  for (auto _ : state) {
    auto m = ncpm::core::find_optimal_popular(inst, weight, true);
    benchmark::DoNotOptimize(m);
  }
}
BENCHMARK(BM_MaxWeightPopular)->RangeMultiplier(4)->Range(1 << 8, 1 << 15)
    ->Unit(benchmark::kMillisecond);

// Reference point: Algorithm 3 as the unit-weight special case.
void BM_MaxCardAsWeightBaseline(benchmark::State& state) {
  const auto inst = instance_for(state.range(0));
  for (auto _ : state) {
    auto m = ncpm::core::find_max_card_popular(inst);
    benchmark::DoNotOptimize(m);
  }
}
BENCHMARK(BM_MaxCardAsWeightBaseline)->RangeMultiplier(4)->Range(1 << 8, 1 << 15)
    ->Unit(benchmark::kMillisecond);

}  // namespace
