// Serving over real sockets: requests/sec and round-trip latency
// percentiles against connection count, loopback TCP, one ncpm-rpc v1
// server with a fixed 4-worker engine behind it.
//
// BM_ServerLoopback        — per-connection sequential calls; reports
//                            req/s plus p50/p90/p99 round-trip micros
//                            (the interactive-client view).
// BM_ServerLoopbackPipelined — call_batch with the client's default
//                            16-deep window; reports req/s (the
//                            throughput-client view).
// BM_ServerConnectionSweep — 64/256/1024 persistent connections against
//                            the epoll core, pipelined tiny requests from
//                            a bounded client pool; reports req/s (the
//                            C10K view — connection scaling, not solver
//                            throughput).
//
// The solve itself is small (the same instance shapes across both), so
// the numbers are dominated by what this PR added: framing, dispatch,
// out-of-order write-back, and per-connection serialisation.

#include <benchmark/benchmark.h>

#include <sys/resource.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "gen/generators.hpp"
#include "net/client.hpp"
#include "net/frame.hpp"
#include "net/server.hpp"
#include "net/socket.hpp"

namespace {

const std::vector<ncpm::core::Instance>& instance_mix() {
  static const std::vector<ncpm::core::Instance> mix = [] {
    std::vector<ncpm::core::Instance> instances;
    for (int i = 0; i < 4; ++i) {
      ncpm::gen::SolvableConfig cfg;
      cfg.num_applicants = 150 + 50 * i;
      cfg.num_posts = cfg.num_applicants * 3;
      cfg.contention = 2.0;
      cfg.all_f_fraction = 0.2;
      cfg.seed = 4242 + static_cast<std::uint64_t>(i);
      instances.push_back(ncpm::gen::solvable_strict_instance(cfg));
    }
    return instances;
  }();
  return mix;
}

constexpr ncpm::engine::Mode kModeCycle[] = {
    ncpm::engine::Mode::kSolve, ncpm::engine::Mode::kMaxCard, ncpm::engine::Mode::kCount,
    ncpm::engine::Mode::kCheck};

double percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(p * static_cast<double>(sorted.size() - 1));
  return sorted[idx];
}

void BM_ServerLoopback(benchmark::State& state) {
  const int connections = static_cast<int>(state.range(0));
  constexpr std::size_t kCallsPerConnection = 32;

  ncpm::net::ServerConfig cfg;
  cfg.engine = ncpm::engine::EngineConfig{4, 1};
  ncpm::net::Server server(cfg);
  server.start();

  // Connections persist across iterations — the serving steady state.
  std::vector<ncpm::net::Client> clients;
  for (int c = 0; c < connections; ++c) {
    clients.push_back(ncpm::net::Client::connect("127.0.0.1", server.port()));
  }

  const auto& instances = instance_mix();
  std::mutex lat_mu;
  std::vector<double> latencies_us;
  std::size_t total_requests = 0;

  for (auto _ : state) {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(connections));
    for (int c = 0; c < connections; ++c) {
      threads.emplace_back([&, c] {
        std::vector<double> local;
        local.reserve(kCallsPerConnection);
        for (std::size_t i = 0; i < kCallsPerConnection; ++i) {
          const auto& inst = instances[(i + static_cast<std::size_t>(c)) % instances.size()];
          const auto mode = kModeCycle[i % std::size(kModeCycle)];
          const auto t0 = std::chrono::steady_clock::now();
          auto resp = clients[static_cast<std::size_t>(c)].call(mode, inst);
          benchmark::DoNotOptimize(resp);
          const auto t1 = std::chrono::steady_clock::now();
          local.push_back(std::chrono::duration<double, std::micro>(t1 - t0).count());
        }
        std::lock_guard<std::mutex> lock(lat_mu);
        latencies_us.insert(latencies_us.end(), local.begin(), local.end());
      });
    }
    for (auto& t : threads) t.join();
    total_requests += static_cast<std::size_t>(connections) * kCallsPerConnection;
  }

  std::sort(latencies_us.begin(), latencies_us.end());
  state.counters["req/s"] =
      benchmark::Counter(static_cast<double>(total_requests), benchmark::Counter::kIsRate);
  state.counters["p50_us"] = percentile(latencies_us, 0.50);
  state.counters["p90_us"] = percentile(latencies_us, 0.90);
  state.counters["p99_us"] = percentile(latencies_us, 0.99);

  for (auto& client : clients) client.close();
  server.stop();
}
BENCHMARK(BM_ServerLoopback)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_ServerLoopbackPipelined(benchmark::State& state) {
  const int connections = static_cast<int>(state.range(0));
  constexpr std::size_t kBatchPerConnection = 64;

  ncpm::net::ServerConfig cfg;
  cfg.engine = ncpm::engine::EngineConfig{4, 1};
  ncpm::net::Server server(cfg);
  server.start();

  std::vector<ncpm::net::Client> clients;
  for (int c = 0; c < connections; ++c) {
    clients.push_back(ncpm::net::Client::connect("127.0.0.1", server.port()));
  }

  const auto& instances = instance_mix();
  std::vector<ncpm::net::RpcCall> calls;
  calls.reserve(kBatchPerConnection);
  for (std::size_t i = 0; i < kBatchPerConnection; ++i) {
    calls.push_back(
        {kModeCycle[i % std::size(kModeCycle)], instances[i % instances.size()], 0});
  }

  std::size_t total_requests = 0;
  for (auto _ : state) {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(connections));
    for (int c = 0; c < connections; ++c) {
      threads.emplace_back([&, c] {
        auto responses = clients[static_cast<std::size_t>(c)].call_batch(calls);
        benchmark::DoNotOptimize(responses);
      });
    }
    for (auto& t : threads) t.join();
    total_requests += static_cast<std::size_t>(connections) * kBatchPerConnection;
  }
  state.counters["req/s"] =
      benchmark::Counter(static_cast<double>(total_requests), benchmark::Counter::kIsRate);

  for (auto& client : clients) client.close();
  server.stop();
}
BENCHMARK(BM_ServerLoopbackPipelined)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_ServerOverload(benchmark::State& state) {
  // Demand is `multiplier` x the server's global admission cap: every client
  // keeps one call in flight, so with cap 8 and 16 clients roughly half the
  // arrivals are shed. Reports the shed rate and the p99 round-trip of the
  // *admitted* requests — the overload contract is "refuse fast, stay fast
  // for what you accept", and this measures both halves.
  const std::size_t multiplier = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t kGlobalCap = 8;
  constexpr std::size_t kCallsPerClient = 16;
  const std::size_t clients_n = kGlobalCap * multiplier;

  ncpm::net::ServerConfig cfg;
  cfg.engine = ncpm::engine::EngineConfig{2, 1};
  cfg.max_in_flight_global = kGlobalCap;
  ncpm::net::Server server(cfg);
  server.start();

  std::vector<ncpm::net::Client> clients;
  for (std::size_t c = 0; c < clients_n; ++c) {
    clients.push_back(ncpm::net::Client::connect("127.0.0.1", server.port()));
  }

  const auto& instances = instance_mix();
  std::mutex lat_mu;
  std::vector<double> admitted_us;
  std::size_t admitted = 0;
  std::size_t shed = 0;
  std::atomic<bool> bad_status{false};

  for (auto _ : state) {
    std::vector<std::thread> threads;
    threads.reserve(clients_n);
    for (std::size_t c = 0; c < clients_n; ++c) {
      threads.emplace_back([&, c] {
        std::vector<double> local;
        std::size_t local_admitted = 0;
        std::size_t local_shed = 0;
        for (std::size_t i = 0; i < kCallsPerClient; ++i) {
          const auto& inst = instances[(i + c) % instances.size()];
          const auto mode = kModeCycle[i % std::size(kModeCycle)];
          const auto t0 = std::chrono::steady_clock::now();
          const auto resp = clients[c].call(mode, inst);
          const auto t1 = std::chrono::steady_clock::now();
          if (resp.status == ncpm::net::RpcStatus::kOverloaded) {
            ++local_shed;
          } else if (resp.status == ncpm::net::RpcStatus::kOk ||
                     resp.status == ncpm::net::RpcStatus::kNoSolution) {
            ++local_admitted;
            local.push_back(std::chrono::duration<double, std::micro>(t1 - t0).count());
          } else {
            bad_status.store(true);  // kRejected here would be a server bug
          }
        }
        std::lock_guard<std::mutex> lock(lat_mu);
        admitted += local_admitted;
        shed += local_shed;
        admitted_us.insert(admitted_us.end(), local.begin(), local.end());
      });
    }
    for (auto& t : threads) t.join();
  }
  if (bad_status.load()) {
    state.SkipWithError("live server answered something other than ok/no-solution/overloaded");
    return;
  }

  std::sort(admitted_us.begin(), admitted_us.end());
  const auto total = admitted + shed;
  state.counters["admitted/s"] =
      benchmark::Counter(static_cast<double>(admitted), benchmark::Counter::kIsRate);
  state.counters["shed_rate"] =
      total == 0 ? 0.0 : static_cast<double>(shed) / static_cast<double>(total);
  state.counters["admitted_p50_us"] = percentile(admitted_us, 0.50);
  state.counters["admitted_p99_us"] = percentile(admitted_us, 0.99);

  for (auto& client : clients) client.close();
  server.stop();
}
BENCHMARK(BM_ServerOverload)->Arg(2)->Arg(4)->UseRealTime()->Unit(benchmark::kMillisecond);

/// Best-effort RLIMIT_NOFILE raise so the 1024-connection point fits.
bool fd_budget_holds(std::size_t want) {
  rlimit lim{};
  if (::getrlimit(RLIMIT_NOFILE, &lim) != 0) return false;
  if (lim.rlim_cur < want) {
    rlimit raised = lim;
    raised.rlim_cur = (lim.rlim_max == RLIM_INFINITY)
                          ? want
                          : std::min<rlim_t>(lim.rlim_max, static_cast<rlim_t>(want));
    if (::setrlimit(RLIMIT_NOFILE, &raised) == 0) lim = raised;
  }
  return lim.rlim_cur >= want;
}

void BM_ServerConnectionSweep(benchmark::State& state) {
  const std::size_t connections = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t kPipelineDepth = 8;
  constexpr std::size_t kClientThreads = 8;

  if (!fd_budget_holds(2 * connections + 64)) {
    state.SkipWithError("RLIMIT_NOFILE too small for this connection count");
    return;
  }

  ncpm::net::ServerConfig cfg;
  cfg.core = ncpm::net::ServerCoreKind::kEpoll;
  cfg.backlog = 256;
  cfg.engine = ncpm::engine::EngineConfig{4, 1};
  ncpm::net::Server server(cfg);
  server.start();

  // One tiny instance, pre-encoded: the sweep measures how the reactor
  // scales with live sockets, so keep frames small and solves trivial.
  ncpm::gen::SolvableConfig icfg;
  icfg.num_applicants = 12;
  icfg.num_posts = 30;
  icfg.seed = 77;
  const auto inst = ncpm::gen::solvable_strict_instance(icfg);
  std::vector<std::string> request_frames;
  for (std::size_t i = 0; i < kPipelineDepth; ++i) {
    ncpm::net::RequestHead head;
    head.request_id = i + 1;
    head.mode_raw = static_cast<std::uint8_t>(kModeCycle[i % std::size(kModeCycle)]);
    request_frames.push_back(ncpm::net::encode_request_frame(head, inst));
  }

  // Persistent raw sockets, handshaken up front (steady serving state).
  std::vector<ncpm::net::Socket> sockets;
  sockets.reserve(connections);
  for (std::size_t c = 0; c < connections; ++c) {
    sockets.push_back(
        ncpm::net::Socket::connect_to("127.0.0.1", server.port(), std::chrono::seconds(30)));
    sockets.back().set_recv_timeout(std::chrono::seconds(120));
    ncpm::net::send_hello(sockets.back());
    if (!ncpm::net::expect_hello(sockets.back())) {
      state.SkipWithError("handshake failed during connection ramp");
      return;
    }
  }

  std::size_t total_requests = 0;
  for (auto _ : state) {
    // Bounded client pool: each worker drives its stride of connections —
    // the point is many sockets, not many client threads.
    std::vector<std::thread> workers;
    workers.reserve(kClientThreads);
    std::atomic<bool> failed{false};
    for (std::size_t w = 0; w < kClientThreads; ++w) {
      workers.emplace_back([&, w] {
        std::vector<std::uint8_t> body;
        for (std::size_t c = w; c < connections; c += kClientThreads) {
          auto& sock = sockets[c];
          for (const auto& frame : request_frames) {
            sock.send_all(frame.data(), frame.size());
          }
          for (std::size_t r = 0; r < kPipelineDepth; ++r) {
            if (!ncpm::net::read_frame_body(sock, body)) {
              failed.store(true);
              return;
            }
            benchmark::DoNotOptimize(body.data());
          }
        }
      });
    }
    for (auto& t : workers) t.join();
    if (failed.load()) {
      state.SkipWithError("connection dropped mid-sweep");
      return;
    }
    total_requests += connections * kPipelineDepth;
  }
  state.counters["req/s"] =
      benchmark::Counter(static_cast<double>(total_requests), benchmark::Counter::kIsRate);
  state.counters["connections"] = static_cast<double>(connections);

  for (auto& sock : sockets) sock.close();
  server.stop();
}
BENCHMARK(BM_ServerConnectionSweep)->Arg(64)->Arg(256)->Arg(1024)->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_MetricsOverhead(benchmark::State& state) {
  // The observability tax on the serving hot path, same pipelined workload
  // at three points:
  //   /0 — metrics registry only, solver-phase profiler OFF
  //        (engine.profile_phases = false): every PhaseScope in the solver
  //        takes the detached no-op path. The true floor.
  //   /1 — phase profiler ON (the default): per-lane PhaseAccum attach,
  //        RAII scope timing in every solver stage, per-phase histogram
  //        flush per request. Acceptance: req/s within ~2% of /0.
  //   /2 — everything else on top: every request traced (sample_every = 1),
  //        a live scraper pulling stats frames every 25 ms on its own
  //        connection (hundreds of times a real Prometheus cadence), and
  //        the HTTP /metrics endpoint bound — a busy production
  //        configuration. The scrape interval matters on small machines:
  //        rendering a snapshot is not free, so a scraper spinning with no
  //        sleep measures CPU theft by the scraper loop itself, not the
  //        serving path's tax.
  const int level = static_cast<int>(state.range(0));
  const bool profile_phases = level >= 1;
  const bool full_obs = level >= 2;
  constexpr int kConnections = 4;
  constexpr std::size_t kBatchPerConnection = 64;

  ncpm::net::ServerConfig cfg;
  cfg.engine = ncpm::engine::EngineConfig{4, 1};
  cfg.engine.profile_phases = profile_phases;
  if (full_obs) {
    cfg.trace_sample_n = 1;
    cfg.metrics_port = 0;
  }
  ncpm::net::Server server(cfg);
  server.start();

  std::vector<ncpm::net::Client> clients;
  for (int c = 0; c < kConnections; ++c) {
    clients.push_back(ncpm::net::Client::connect("127.0.0.1", server.port()));
  }

  std::atomic<bool> stop_scraper{false};
  std::thread scraper;
  if (full_obs) {
    scraper = std::thread([&] {
      auto probe = ncpm::net::Client::connect("127.0.0.1", server.port());
      while (!stop_scraper.load(std::memory_order_acquire)) {
        auto reply = probe.stats(/*include_traces=*/true);
        benchmark::DoNotOptimize(reply.snapshot.counters.data());
        std::this_thread::sleep_for(std::chrono::milliseconds(25));
      }
    });
  }

  const auto& instances = instance_mix();
  std::vector<ncpm::net::RpcCall> calls;
  calls.reserve(kBatchPerConnection);
  for (std::size_t i = 0; i < kBatchPerConnection; ++i) {
    calls.push_back(
        {kModeCycle[i % std::size(kModeCycle)], instances[i % instances.size()], 0});
  }

  std::size_t total_requests = 0;
  for (auto _ : state) {
    std::vector<std::thread> threads;
    threads.reserve(kConnections);
    for (int c = 0; c < kConnections; ++c) {
      threads.emplace_back([&, c] {
        auto responses = clients[static_cast<std::size_t>(c)].call_batch(calls);
        benchmark::DoNotOptimize(responses);
      });
    }
    for (auto& t : threads) t.join();
    total_requests += static_cast<std::size_t>(kConnections) * kBatchPerConnection;
  }
  state.counters["req/s"] =
      benchmark::Counter(static_cast<double>(total_requests), benchmark::Counter::kIsRate);
  state.counters["profile_phases"] = profile_phases ? 1.0 : 0.0;

  if (full_obs) {
    stop_scraper.store(true, std::memory_order_release);
    scraper.join();
  }
  for (auto& client : clients) client.close();
  server.stop();
}
BENCHMARK(BM_MetricsOverhead)->Arg(0)->Arg(1)->Arg(2)->UseRealTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace
