// Experiment C7 (Theorem 16 / Algorithm 4): enumerating all "next" stable
// matchings of a given stable matching — the NC pipeline (parallel reduced
// lists + pseudoforest cycles) vs the sequential rotation finder. The
// rotation count per matching is reported; both routes return identical
// rotation sets (tested).

#include <benchmark/benchmark.h>

#include "gen/stable_generators.hpp"
#include "stable/gale_shapley.hpp"
#include "stable/next_stable.hpp"
#include "stable/rotations.hpp"

namespace {

void BM_NextStableNC(benchmark::State& state) {
  const auto n = static_cast<std::int32_t>(state.range(0));
  const auto inst = ncpm::gen::random_stable_instance(n, 31);
  const auto m0 = ncpm::stable::man_optimal(inst);
  std::size_t rotations = 0;
  for (auto _ : state) {
    auto result = ncpm::stable::next_stable_matchings(inst, m0);
    rotations = result.rotations.size();
    benchmark::DoNotOptimize(result);
  }
  state.counters["rotations"] = static_cast<double>(rotations);
}
BENCHMARK(BM_NextStableNC)->RangeMultiplier(2)->Range(1 << 6, 1 << 12)
    ->Unit(benchmark::kMillisecond);

void BM_NextStableSequential(benchmark::State& state) {
  const auto n = static_cast<std::int32_t>(state.range(0));
  const auto inst = ncpm::gen::random_stable_instance(n, 31);
  const auto m0 = ncpm::stable::man_optimal(inst);
  for (auto _ : state) {
    auto rotations = ncpm::stable::exposed_rotations_sequential(inst, m0);
    benchmark::DoNotOptimize(rotations);
  }
}
BENCHMARK(BM_NextStableSequential)->RangeMultiplier(2)->Range(1 << 6, 1 << 12)
    ->Unit(benchmark::kMillisecond);

// Rotation-rich adversarial family: cyclic-shift preferences.
void BM_NextStableCyclic(benchmark::State& state) {
  const auto n = static_cast<std::int32_t>(state.range(0));
  const auto inst = ncpm::gen::cyclic_stable_instance(n);
  const auto m0 = ncpm::stable::man_optimal(inst);
  std::size_t rotations = 0;
  for (auto _ : state) {
    auto result = ncpm::stable::next_stable_matchings(inst, m0);
    rotations = result.rotations.size();
    benchmark::DoNotOptimize(result);
  }
  state.counters["rotations"] = static_cast<double>(rotations);
}
BENCHMARK(BM_NextStableCyclic)->RangeMultiplier(2)->Range(1 << 6, 1 << 12)
    ->Unit(benchmark::kMillisecond);

// A full lattice descent, taking the first successor each time — the
// "enumerate stable matchings with small parallel time per matching" use
// case the paper cites from Gusfield-Irving.
void BM_LatticeDescent(benchmark::State& state) {
  const auto n = static_cast<std::int32_t>(state.range(0));
  const auto inst = ncpm::gen::random_stable_instance(n, 77);
  const auto m0 = ncpm::stable::man_optimal(inst);
  std::size_t steps = 0;
  for (auto _ : state) {
    auto m = m0;
    steps = 0;
    while (true) {
      auto result = ncpm::stable::next_stable_matchings(inst, m);
      if (result.is_woman_optimal) break;
      m = result.successors.front();
      ++steps;
    }
    benchmark::DoNotOptimize(m);
  }
  state.counters["descent_steps"] = static_cast<double>(steps);
}
BENCHMARK(BM_LatticeDescent)->RangeMultiplier(2)->Range(1 << 5, 1 << 9)
    ->Unit(benchmark::kMillisecond);

}  // namespace
