// Experiment C3 (Theorem 10 / Algorithm 3): maximum-cardinality popular
// matching. Measures the full pipeline and the switching phase alone, and
// reports how many applicants the switching phase rescued from their last
// resorts (`gained`) — the quantity Algorithm 3 maximises.

#include <benchmark/benchmark.h>

#include "core/max_card_popular.hpp"
#include "core/popular_matching.hpp"
#include "core/reduced_graph.hpp"
#include "core/switching_graph.hpp"
#include "core/verify.hpp"
#include "gen/generators.hpp"

namespace {

ncpm::core::Instance pressured_instance(std::int64_t n) {
  ncpm::gen::SolvableConfig cfg;
  cfg.num_applicants = static_cast<std::int32_t>(n);
  cfg.num_posts = static_cast<std::int32_t>(n + n / 2);
  cfg.list_min = 2;
  cfg.list_max = 6;
  cfg.all_f_fraction = 0.4;  // many applicants with s(a) = l(a)
  cfg.contention = 3.0;
  cfg.seed = 17;
  return ncpm::gen::solvable_strict_instance(cfg);
}

void BM_MaxCardPipeline(benchmark::State& state) {
  const auto inst = pressured_instance(state.range(0));
  std::size_t size = 0;
  for (auto _ : state) {
    auto m = ncpm::core::find_max_card_popular(inst);
    size = ncpm::core::matching_size(inst, *m);
    benchmark::DoNotOptimize(m);
  }
  state.counters["matching_size"] = static_cast<double>(size);
}
BENCHMARK(BM_MaxCardPipeline)->RangeMultiplier(4)->Range(1 << 8, 1 << 16)
    ->Unit(benchmark::kMillisecond);

void BM_SwitchingPhaseOnly(benchmark::State& state) {
  const auto inst = pressured_instance(state.range(0));
  const auto base = ncpm::core::find_popular_matching(inst);
  std::size_t gained = 0;
  for (auto _ : state) {
    auto m = ncpm::core::maximize_cardinality(inst, *base);
    gained = ncpm::core::matching_size(inst, m) - ncpm::core::matching_size(inst, *base);
    benchmark::DoNotOptimize(m);
  }
  state.counters["gained"] = static_cast<double>(gained);
  state.counters["base_size"] = static_cast<double>(ncpm::core::matching_size(inst, *base));
}
BENCHMARK(BM_SwitchingPhaseOnly)->RangeMultiplier(4)->Range(1 << 8, 1 << 16)
    ->Unit(benchmark::kMillisecond);

// Ablation (DESIGN.md §6.3): the single weighted list-ranking pass prices
// every switching path of a tree component at once; this measures that
// margin computation in isolation.
void BM_MarginsOnly(benchmark::State& state) {
  const auto inst = pressured_instance(state.range(0));
  const auto base = ncpm::core::find_popular_matching(inst);
  const auto rg = ncpm::core::build_reduced_graph(inst);
  const ncpm::core::SwitchingEngine engine(inst, rg, *base);
  std::vector<std::int64_t> value(static_cast<std::size_t>(inst.total_posts()));
  for (std::int32_t p = 0; p < inst.total_posts(); ++p) {
    value[static_cast<std::size_t>(p)] = inst.is_last_resort(p) ? 0 : 1;
  }
  for (auto _ : state) {
    auto report = engine.margins(value);
    benchmark::DoNotOptimize(report);
  }
}
BENCHMARK(BM_MarginsOnly)->RangeMultiplier(4)->Range(1 << 8, 1 << 16)
    ->Unit(benchmark::kMillisecond);

}  // namespace
