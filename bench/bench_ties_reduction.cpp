// Experiment C6 (Theorem 11): maximum-cardinality bipartite matching via
// the popular-matching reduction vs Hopcroft–Karp directly, over a density
// sweep. The reduction's own cost (building the rank-1 instance) is the NC
// part of the theorem; `cardinality` certifies both routes agree. Also
// measures the general ties solver (AIKM machinery).

#include <benchmark/benchmark.h>

#include "core/ties.hpp"
#include "gen/generators.hpp"
#include "matching/hopcroft_karp.hpp"

namespace {

void BM_McbmViaPopularReduction(benchmark::State& state) {
  const auto n = static_cast<std::int32_t>(state.range(0));
  const double avg_deg = static_cast<double>(state.range(1));
  const auto g = ncpm::gen::random_bipartite(n, n, avg_deg, 97);
  std::size_t cardinality = 0;
  for (auto _ : state) {
    auto m = ncpm::core::max_card_bipartite_via_popular(g);
    cardinality = m.size();
    benchmark::DoNotOptimize(m);
  }
  state.counters["cardinality"] = static_cast<double>(cardinality);
}
BENCHMARK(BM_McbmViaPopularReduction)
    ->ArgsProduct({{1 << 8, 1 << 10, 1 << 12, 1 << 14}, {2, 5, 10}})
    ->Unit(benchmark::kMillisecond);

void BM_McbmHopcroftKarp(benchmark::State& state) {
  const auto n = static_cast<std::int32_t>(state.range(0));
  const double avg_deg = static_cast<double>(state.range(1));
  const auto g = ncpm::gen::random_bipartite(n, n, avg_deg, 97);
  std::size_t cardinality = 0;
  for (auto _ : state) {
    auto m = ncpm::matching::maximum_matching(g);
    cardinality = m.size();
    benchmark::DoNotOptimize(m);
  }
  state.counters["cardinality"] = static_cast<double>(cardinality);
}
BENCHMARK(BM_McbmHopcroftKarp)
    ->ArgsProduct({{1 << 8, 1 << 10, 1 << 12, 1 << 14}, {2, 5, 10}})
    ->Unit(benchmark::kMillisecond);

void BM_ReductionConstructionOnly(benchmark::State& state) {
  const auto n = static_cast<std::int32_t>(state.range(0));
  const auto g = ncpm::gen::random_bipartite(n, n, 5.0, 97);
  for (auto _ : state) {
    auto inst = ncpm::core::rank1_instance(g);
    benchmark::DoNotOptimize(inst);
  }
}
BENCHMARK(BM_ReductionConstructionOnly)->RangeMultiplier(4)->Range(1 << 8, 1 << 16)
    ->Unit(benchmark::kMillisecond);

void BM_PopularWithTies(benchmark::State& state) {
  ncpm::gen::TiesConfig cfg;
  cfg.num_applicants = static_cast<std::int32_t>(state.range(0));
  cfg.num_posts = cfg.num_applicants;
  cfg.list_min = 2;
  cfg.list_max = 6;
  cfg.tie_prob = 0.4;
  cfg.seed = 13;
  const auto inst = ncpm::gen::random_ties_instance(cfg);
  std::int64_t exists = 0;
  for (auto _ : state) {
    auto m = ncpm::core::find_popular_matching_ties(inst);
    exists = m.has_value() ? 1 : 0;
    benchmark::DoNotOptimize(m);
  }
  state.counters["admits_popular"] = static_cast<double>(exists);
}
BENCHMARK(BM_PopularWithTies)->RangeMultiplier(4)->Range(1 << 8, 1 << 15)
    ->Unit(benchmark::kMillisecond);

}  // namespace
