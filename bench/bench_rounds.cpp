// Experiment C2 (Lemma 2): the while-loop of Algorithm 2 runs at most
// ceil(log2 n) + 1 times. Swept over the adversarial binary-tree family
// (which peels roughly one level of maximal paths per round) and random
// solvable instances; the measured `while_rounds` counter vs the bound is
// the reproduced quantity — wall-clock time is secondary here.

#include <benchmark/benchmark.h>

#include "core/applicant_complete.hpp"
#include "core/reduced_graph.hpp"
#include "gen/generators.hpp"
#include "pram/list_ranking.hpp"
#include "pram/workspace.hpp"

namespace {

void BM_Lemma2_BinaryTree(benchmark::State& state) {
  const auto depth = static_cast<std::int32_t>(state.range(0));
  const auto inst = ncpm::gen::binary_tree_instance(depth);
  const auto rg = ncpm::core::build_reduced_graph(inst);
  ncpm::pram::Workspace ws;  // reused across iterations: steady-state regime
  std::uint64_t rounds = 0;
  std::uint64_t steady_allocs = 0;
  for (auto _ : state) {
    auto result = ncpm::core::applicant_complete_matching(inst, rg, ws);
    rounds = result.while_rounds;
    steady_allocs = result.workspace_allocs_first_round + result.workspace_allocs_later_rounds;
    benchmark::DoNotOptimize(result);
  }
  const auto n = static_cast<std::uint64_t>(inst.num_applicants() + inst.total_posts());
  state.counters["n"] = static_cast<double>(n);
  state.counters["while_rounds"] = static_cast<double>(rounds);
  state.counters["lemma2_bound"] = static_cast<double>(ncpm::pram::ceil_log2(n) + 1);
  state.counters["ws_allocs_steady"] = static_cast<double>(steady_allocs);
}
BENCHMARK(BM_Lemma2_BinaryTree)->DenseRange(2, 16, 2)->Unit(benchmark::kMillisecond);

void BM_Lemma2_RandomSolvable(benchmark::State& state) {
  ncpm::gen::SolvableConfig cfg;
  cfg.num_applicants = static_cast<std::int32_t>(state.range(0));
  cfg.num_posts = cfg.num_applicants * 2;
  cfg.list_min = 2;
  cfg.list_max = 5;
  cfg.contention = 2.0;
  cfg.seed = 11;
  const auto inst = ncpm::gen::solvable_strict_instance(cfg);
  const auto rg = ncpm::core::build_reduced_graph(inst);
  std::uint64_t rounds = 0;
  for (auto _ : state) {
    auto result = ncpm::core::applicant_complete_matching(inst, rg);
    rounds = result.while_rounds;
    benchmark::DoNotOptimize(result);
  }
  const auto n = static_cast<std::uint64_t>(inst.num_applicants() + inst.total_posts());
  state.counters["while_rounds"] = static_cast<double>(rounds);
  state.counters["lemma2_bound"] = static_cast<double>(ncpm::pram::ceil_log2(n) + 1);
}
BENCHMARK(BM_Lemma2_RandomSolvable)->RangeMultiplier(4)->Range(1 << 8, 1 << 18)
    ->Unit(benchmark::kMillisecond);

// Total NC rounds of the full Algorithm 1 pipeline (all barrier-synchronised
// parallel steps), to exhibit the O(log^2 n)-style growth of the depth.
void BM_TotalNcRounds(benchmark::State& state) {
  ncpm::gen::SolvableConfig cfg;
  cfg.num_applicants = static_cast<std::int32_t>(state.range(0));
  cfg.num_posts = cfg.num_applicants * 2;
  cfg.contention = 2.0;
  cfg.seed = 3;
  const auto inst = ncpm::gen::solvable_strict_instance(cfg);
  const auto rg = ncpm::core::build_reduced_graph(inst);
  ncpm::pram::NcCounters counters;
  for (auto _ : state) {
    counters.reset();
    auto result = ncpm::core::applicant_complete_matching(inst, rg, &counters);
    benchmark::DoNotOptimize(result);
  }
  state.counters["nc_rounds"] = static_cast<double>(counters.rounds);
  state.counters["nc_work"] = static_cast<double>(counters.work);
}
BENCHMARK(BM_TotalNcRounds)->RangeMultiplier(4)->Range(1 << 8, 1 << 18)
    ->Unit(benchmark::kMillisecond);

}  // namespace
