// Engine throughput: instances/sec over a mixed sparse/dense batch as a
// function of worker count. Each worker solves on a one-lane executor, so
// worker count is the only parallelism axis here (lane scaling is covered
// by bench_scaling.cpp) — the scaling claim is that a batch of independent
// instances scales near-linearly 1 -> 4 workers (each worker's warm
// workspace keeps the steady state allocation-free, so there is no
// allocator contention to serialise them).

#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "engine/engine.hpp"
#include "gen/generators.hpp"

namespace {

/// Mixed batch: half sparse (many applicants, short lists), half dense
/// (fewer applicants, long lists), interleaved so neighbouring requests
/// differ in shape.
const std::vector<ncpm::core::Instance>& mixed_batch() {
  static const std::vector<ncpm::core::Instance> batch = [] {
    std::vector<ncpm::core::Instance> instances;
    for (int i = 0; i < 24; ++i) {
      ncpm::gen::SolvableConfig cfg;
      cfg.seed = 42 + static_cast<std::uint64_t>(i);
      if (i % 2 == 0) {
        cfg.num_applicants = 2000;
        cfg.num_posts = 5000;
        cfg.list_min = 2;
        cfg.list_max = 4;
        cfg.contention = 2.0;
      } else {
        cfg.num_applicants = 600;
        cfg.num_posts = 1800;
        cfg.list_min = 8;
        cfg.list_max = 16;
        cfg.contention = 3.0;
      }
      cfg.all_f_fraction = 0.2;
      instances.push_back(ncpm::gen::solvable_strict_instance(cfg));
    }
    return instances;
  }();
  return batch;
}

void BM_EngineThroughput(benchmark::State& state) {
  const int workers = static_cast<int>(state.range(0));
  const auto& instances = mixed_batch();

  // One engine per run (not per iteration): workspaces stay warm across
  // iterations, which is the serving steady state being measured.
  ncpm::engine::Engine engine({workers, /*lanes_per_worker=*/1});
  std::size_t solved = 0;
  for (auto _ : state) {
    std::vector<ncpm::engine::Request> requests;
    requests.reserve(instances.size());
    for (std::size_t i = 0; i < instances.size(); ++i) {
      // Mixed modes: mostly Algorithm 1, every fourth request Algorithm 3.
      const auto mode = i % 4 == 3 ? ncpm::engine::Mode::kMaxCard
                                   : ncpm::engine::Mode::kSolve;
      requests.push_back(ncpm::engine::Request::popular(mode, instances[i]));
    }
    auto futures = engine.submit_batch(std::move(requests));
    for (auto& f : futures) {
      if (f.get().status == ncpm::engine::Status::kOk) ++solved;
    }
  }
  benchmark::DoNotOptimize(solved);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(instances.size()));

  const auto stats = engine.stats();
  state.counters["workers"] = workers;
  state.counters["ws_allocs_total"] = static_cast<double>(stats.workspace_allocs_total);
  state.counters["mean_queue_us"] =
      stats.completed == 0 ? 0.0
                           : static_cast<double>(stats.queue_ns_total) / 1e3 /
                                 static_cast<double>(stats.completed);
  state.counters["instances_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * static_cast<double>(instances.size()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_EngineThroughput)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->MeasureProcessCPUTime();

}  // namespace
