#!/usr/bin/env bash
# Run every Google Benchmark binary and write BENCH_<name>.json next to the
# results of previous runs, seeding the perf-trajectory files.
#
#   bench/run_benches.sh [build-dir] [output-dir] [extra benchmark args...]
#
# Defaults: build-dir = build, output-dir = bench/results.
set -euo pipefail

build_dir="${1:-build}"
out_dir="${2:-bench/results}"
shift $(( $# > 2 ? 2 : $# )) || true

if [[ ! -d "${build_dir}/bench" ]]; then
  echo "error: ${build_dir}/bench not found — build first:" >&2
  echo "  cmake -B ${build_dir} -S . && cmake --build ${build_dir} -j" >&2
  exit 1
fi

mkdir -p "${out_dir}"

# Stamp the run's provenance into the benchmark JSON context so committed
# result files identify exactly what produced them.
stamp_json() {
  python3 - "$1" <<'PY'
import json, os, platform, subprocess, sys

path = sys.argv[1]
try:
    with open(path) as f:
        data = json.load(f)
except (OSError, json.JSONDecodeError):
    # A filter that matches nothing leaves an empty output file; skip it.
    print(f"   (no JSON to stamp in {path})")
    sys.exit(0)

def git(*args):
    try:
        return subprocess.run(["git", *args], capture_output=True, text=True,
                              check=True).stdout.strip()
    except Exception:
        return "unknown"

ctx = data.setdefault("context", {})
ctx["git_commit"] = git("rev-parse", "HEAD")
ctx["git_dirty"] = git("status", "--porcelain") != ""
try:
    # NCPM_LANES overrides the default executor width (see
    # pram::default_lanes); unset means hardware concurrency.
    threads = int(os.environ.get("NCPM_LANES", ""))
except ValueError:
    threads = 0
ctx["threads"] = threads or os.cpu_count()
ctx["hardware_concurrency"] = os.cpu_count()
# SIMD tier cap and lane pinning, as configured for this run. "auto" means
# runtime dispatch picked the tier (per-series tiers live in each bench's
# "simd_tier" counter); pinning only happens when the bench opts in via
# NCPM_BENCH_PIN_LANES.
ctx["simd"] = os.environ.get("NCPM_SIMD", "auto")
ctx["pin_lanes"] = os.environ.get("NCPM_BENCH_PIN_LANES", "") not in ("", "0")
# Solver-phase profiler state for the run. "default" = each bench's own
# EngineConfig.profile_phases (on unless the bench A/Bs it, e.g.
# BM_MetricsOverhead's per-series profile_phases counter).
ctx["profile_phases"] = os.environ.get("NCPM_PROFILE_PHASES", "default")
cpu = platform.processor() or "unknown"
try:
    with open("/proc/cpuinfo") as f:
        for line in f:
            if line.startswith("model name"):
                cpu = line.split(":", 1)[1].strip()
                break
except OSError:
    pass
ctx["cpu_model"] = cpu

with open(path, "w") as f:
    json.dump(data, f, indent=2)
    f.write("\n")
PY
}

found=0
for bin in "${build_dir}"/bench/bench_*; do
  [[ -f "${bin}" && -x "${bin}" ]] || continue
  found=1
  name="$(basename "${bin}")"
  out="${out_dir}/BENCH_${name#bench_}.json"
  echo "== ${name} -> ${out}"
  "${bin}" --benchmark_format=json --benchmark_out="${out}" \
           --benchmark_out_format=json "$@"
  stamp_json "${out}"
done

if [[ "${found}" -eq 0 ]]; then
  echo "error: no bench_* binaries under ${build_dir}/bench" >&2
  exit 1
fi
