#!/usr/bin/env bash
# Run every Google Benchmark binary and write BENCH_<name>.json next to the
# results of previous runs, seeding the perf-trajectory files.
#
#   bench/run_benches.sh [build-dir] [output-dir] [extra benchmark args...]
#
# Defaults: build-dir = build, output-dir = bench/results.
set -euo pipefail

build_dir="${1:-build}"
out_dir="${2:-bench/results}"
shift $(( $# > 2 ? 2 : $# )) || true

if [[ ! -d "${build_dir}/bench" ]]; then
  echo "error: ${build_dir}/bench not found — build first:" >&2
  echo "  cmake -B ${build_dir} -S . && cmake --build ${build_dir} -j" >&2
  exit 1
fi

mkdir -p "${out_dir}"

found=0
for bin in "${build_dir}"/bench/bench_*; do
  [[ -f "${bin}" && -x "${bin}" ]] || continue
  found=1
  name="$(basename "${bin}")"
  out="${out_dir}/BENCH_${name#bench_}.json"
  echo "== ${name} -> ${out}"
  "${bin}" --benchmark_format=json --benchmark_out="${out}" \
           --benchmark_out_format=json "$@"
done

if [[ "${found}" -eq 0 ]]; then
  echo "error: no bench_* binaries under ${build_dir}/bench" >&2
  exit 1
fi
