// Experiment C1 (Theorem 3): the NC popular-matching pipeline vs the
// sequential Abraham et al. baseline, across instance sizes and post-
// popularity skews. The paper makes a depth claim, not a wall-clock claim:
// the NC implementation pays polylog-many full parallel rounds, so on a
// fixed-core machine it trades constant-factor work for parallel depth.
// The `while_rounds` counter is the Lemma 2 quantity; `lemma2_bound` is
// ceil(log2 n) + 1 for comparison.

#include <benchmark/benchmark.h>

#include "core/abraham_baseline.hpp"
#include "core/popular_matching.hpp"
#include "gen/generators.hpp"
#include "pram/list_ranking.hpp"
#include "pram/workspace.hpp"

namespace {

ncpm::core::Instance make_instance(std::int64_t n, double all_f_fraction) {
  ncpm::gen::SolvableConfig cfg;
  cfg.num_applicants = static_cast<std::int32_t>(n);
  cfg.num_posts = static_cast<std::int32_t>(n + n / 2);
  cfg.list_min = 2;
  cfg.list_max = 6;
  cfg.all_f_fraction = all_f_fraction;
  cfg.contention = 3.0;
  cfg.seed = 42;
  return ncpm::gen::solvable_strict_instance(cfg);
}

void BM_PopularNC(benchmark::State& state) {
  const auto inst = make_instance(state.range(0), 0.2);
  ncpm::core::PopularRunStats stats;
  for (auto _ : state) {
    auto m = ncpm::core::find_popular_matching(inst, nullptr, &stats);
    benchmark::DoNotOptimize(m);
  }
  const auto n = static_cast<std::uint64_t>(inst.num_applicants() + inst.total_posts());
  state.counters["while_rounds"] = static_cast<double>(stats.while_rounds);
  state.counters["lemma2_bound"] = static_cast<double>(ncpm::pram::ceil_log2(n) + 1);
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_PopularNC)->RangeMultiplier(4)->Range(1 << 8, 1 << 17)->Unit(benchmark::kMillisecond)
    ->Complexity(benchmark::oNLogN);

void BM_PopularSequential(benchmark::State& state) {
  const auto inst = make_instance(state.range(0), 0.2);
  for (auto _ : state) {
    auto m = ncpm::core::find_popular_matching_sequential(inst);
    benchmark::DoNotOptimize(m);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_PopularSequential)->RangeMultiplier(4)->Range(1 << 8, 1 << 17)
    ->Unit(benchmark::kMillisecond)->Complexity(benchmark::oN);

// Large sparse configuration: the adversarial binary-tree family drives
// Θ(log n) while-rounds whose alive-edge set shrinks by roughly one tree
// level per round. An engine that re-scans all m original edges every round
// pays Θ(m log m) *per round*; a compacting engine pays it once and then
// works proportionally to the surviving edges. This is the configuration
// where the difference dominates end-to-end wall-clock.
void BM_PopularNC_LargeSparse(benchmark::State& state) {
  const auto inst =
      ncpm::gen::binary_tree_instance(static_cast<std::int32_t>(state.range(0)));
  ncpm::pram::Workspace ws;  // reused across iterations: steady-state regime
  ncpm::core::PopularRunStats stats;
  for (auto _ : state) {
    auto m = ncpm::core::find_popular_matching(inst, ws, nullptr, &stats);
    benchmark::DoNotOptimize(m);
  }
  state.counters["n_applicants"] = static_cast<double>(inst.num_applicants());
  state.counters["while_rounds"] = static_cast<double>(stats.while_rounds);
  // Allocations observed during the *last* iteration's round loop — 0 once
  // the workspace is warm (the zero-allocation guarantee).
  state.counters["ws_allocs_steady"] = static_cast<double>(
      stats.workspace_allocs_first_round + stats.workspace_allocs_later_rounds);
}
BENCHMARK(BM_PopularNC_LargeSparse)->DenseRange(12, 18, 2)->Unit(benchmark::kMillisecond);

// Zipf-skewed random instances: heavy first-choice contention; existence is
// not guaranteed, so this measures the decision pipeline on realistic loads.
void BM_PopularNC_Zipf(benchmark::State& state) {
  ncpm::gen::StrictConfig cfg;
  cfg.num_applicants = static_cast<std::int32_t>(state.range(0));
  cfg.num_posts = cfg.num_applicants;
  cfg.list_min = 2;
  cfg.list_max = 6;
  cfg.zipf_s = 1.0;
  cfg.seed = 7;
  const auto inst = ncpm::gen::random_strict_instance(cfg);
  std::int64_t exists = 0;
  for (auto _ : state) {
    auto m = ncpm::core::find_popular_matching(inst);
    exists = m.has_value() ? 1 : 0;
    benchmark::DoNotOptimize(m);
  }
  state.counters["admits_popular"] = static_cast<double>(exists);
}
BENCHMARK(BM_PopularNC_Zipf)->RangeMultiplier(4)->Range(1 << 8, 1 << 16)
    ->Unit(benchmark::kMillisecond);

void BM_PopularSequential_Zipf(benchmark::State& state) {
  ncpm::gen::StrictConfig cfg;
  cfg.num_applicants = static_cast<std::int32_t>(state.range(0));
  cfg.num_posts = cfg.num_applicants;
  cfg.list_min = 2;
  cfg.list_max = 6;
  cfg.zipf_s = 1.0;
  cfg.seed = 7;
  const auto inst = ncpm::gen::random_strict_instance(cfg);
  for (auto _ : state) {
    auto m = ncpm::core::find_popular_matching_sequential(inst);
    benchmark::DoNotOptimize(m);
  }
}
BENCHMARK(BM_PopularSequential_Zipf)->RangeMultiplier(4)->Range(1 << 8, 1 << 16)
    ->Unit(benchmark::kMillisecond);

}  // namespace
